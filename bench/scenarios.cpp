#include "scenarios.hpp"

#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <chrono>

#include "cc/kind.hpp"
#include "cluster/dstc.hpp"
#include "cluster/gay_gruenwald.hpp"
#include "desp/random.hpp"
#include "emu/texas_emulator.hpp"
#include "exp/executor.hpp"
#include "harness.hpp"
#include "micro_cc.hpp"
#include "micro_hotpath.hpp"
#include "micro_parallel.hpp"
#include "micro_scheduler.hpp"
#include "micro_storage.hpp"
#include "micro_trace.hpp"
#include "ocb/workload.hpp"
#include "sweeps.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "voodb/catalog.hpp"
#include "voodb/experiment.hpp"
#include "voodb/param_registry.hpp"
#include "voodb/sharded.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace {

using exp::Scenario;
using exp::ScenarioContext;
using exp::ScenarioResult;

/// Records an estimate into both the BENCH json recorder and the
/// scenario's result map ("<x>/<series>/{mean,hw}" keys).
void Note(ScenarioResult& result, const std::string& section,
          const std::string& x, const std::string& series,
          const Estimate& e) {
  RecordEstimate(section, x, series, e);
  result[section + "/" + x + "/" + series + "/mean"] = e.mean;
  result[section + "/" + x + "/" + series + "/hw"] = e.half_width;
}

ScenarioResult FigurePointsResult(const std::vector<FigurePoint>& points) {
  ScenarioResult result;
  for (const FigurePoint& p : points) {
    const std::string key = "figure/" + p.x;
    result[key + "/benchmark/mean"] = p.bench.mean;
    result[key + "/benchmark/hw"] = p.bench.half_width;
    result[key + "/simulation/mean"] = p.sim.mean;
    result[key + "/simulation/hw"] = p.sim.half_width;
  }
  return result;
}

/// Values of the scenario's declared grid axis `name`.
std::vector<double> AxisValues(const ScenarioContext& ctx,
                               const std::string& name) {
  for (const auto& [axis, values] : ctx.scenario->grid.axes()) {
    if (axis == name) return values;
  }
  VOODB_CHECK_MSG(false, "scenario '" << ctx.scenario->name
                                      << "' declares no axis '" << name
                                      << "'");
  return {};
}

ocb::OcbParameters FigureWorkload(uint32_t num_classes, uint64_t num_objects) {
  ocb::OcbParameters p;  // Table 5 defaults (PSET..STODEPTH = OCB values)
  p.num_classes = num_classes;
  p.num_objects = num_objects;
  return p;
}

ocb::OcbParameters DstcWorkload() {
  // §4.4: "very characteristic transactions (namely, depth-3 hierarchy
  // traversals)" in favorable conditions — a hot set of repeatedly
  // traversed roots over the mid-sized NC=50 / NO=20000 base.
  ocb::OcbParameters p;
  p.num_classes = 50;
  p.num_objects = 20000;
  p.hierarchy_depth = 3;
  p.root_region = 30;
  return p;
}

void PrintTable(const ScenarioContext& ctx, const std::string& heading,
                const util::TextTable& table, const char* footer) {
  std::cout << "== " << heading << " ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  if (footer != nullptr) std::cout << footer << "\n";
}

void Register(Scenario s) {
  exp::ScenarioRegistry::Instance().Register(std::move(s));
}

// --- Validation figures (fig06..fig11) --------------------------------------

void RegisterInstanceFigure(const char* name, TargetSystem system,
                            uint32_t num_classes, const char* title,
                            const char* description,
                            std::vector<double> paper_bench,
                            std::vector<double> paper_sim) {
  Scenario s;
  s.name = name;
  s.title = title;
  s.description = description;
  s.base.workload = FigureWorkload(num_classes, 20000);
  // Default memory budgets of §4.2.1: O2's 16 MB server cache, Texas'
  // 64 MB host.
  const double memory_mb = system == TargetSystem::kO2 ? 16.0 : 64.0;
  s.base.system = system == TargetSystem::kO2
                      ? core::SystemCatalog::O2WithCache(memory_mb)
                      : core::SystemCatalog::TexasWithMemory(memory_mb);
  s.grid.Axis("num_objects", InstancePoints());
  s.swept = {"num_objects"};
  s.run = [system, memory_mb, paper_bench = std::move(paper_bench),
           paper_sim = std::move(paper_sim)](const ScenarioContext& ctx) {
    return FigurePointsResult(RunInstanceSweep(
        ToRunOptions(ctx), system, ctx.config.workload, memory_mb,
        ctx.config.system, AxisValues(ctx, "num_objects"),
        ctx.scenario->title.c_str(), paper_bench, paper_sim));
  };
  Register(std::move(s));
}

void RegisterMemoryFigure(const char* name, TargetSystem system,
                          const char* title, const char* description,
                          std::vector<double> paper_bench,
                          std::vector<double> paper_sim) {
  Scenario s;
  s.name = name;
  s.title = title;
  s.description = description;
  s.base.workload = FigureWorkload(50, 20000);
  s.base.system = system == TargetSystem::kO2
                      ? core::SystemCatalog::O2WithCache(16.0)
                      : core::SystemCatalog::TexasWithMemory(64.0);
  s.grid.Axis("memory_mb", MemoryPoints());
  s.swept = {"buffer_pages"};
  s.run = [system, paper_bench = std::move(paper_bench),
           paper_sim = std::move(paper_sim)](const ScenarioContext& ctx) {
    return FigurePointsResult(RunMemorySweep(
        ToRunOptions(ctx), system, ctx.config.workload, ctx.config.system,
        AxisValues(ctx, "memory_mb"), ctx.scenario->title.c_str(),
        paper_bench, paper_sim));
  };
  Register(std::move(s));
}

// --- DSTC tables (table6..table8) -------------------------------------------

ScenarioResult DstcResult(const DstcComparison& cmp) {
  ScenarioResult result;
  auto note = [&result](const char* row, const char* series,
                        const Estimate& e) {
    result["dstc/" + std::string(row) + "/" + series + "/mean"] = e.mean;
    result["dstc/" + std::string(row) + "/" + series + "/hw"] = e.half_width;
  };
  const std::pair<const char*, const DstcAggregate*> sides[] = {
      {"benchmark", &cmp.bench}, {"simulation", &cmp.sim}};
  for (const auto& [series, agg] : sides) {
    note("pre_clustering_ios", series, agg->pre);
    note("clustering_overhead_ios", series, agg->overhead);
    note("post_clustering_ios", series, agg->post);
    note("gain", series, agg->gain);
    note("clusters", series, agg->clusters);
    note("mean_cluster_size", series, agg->cluster_size);
  }
  return result;
}

double Ratio(const Estimate& a, const Estimate& b) {
  return b.mean > 0.0 ? a.mean / b.mean : 0.0;
}

/// A printed row of a DSTC table: label, metric, and the paper's
/// benchmark / simulation / ratio values.
struct DstcRow {
  const char* label;
  const Estimate DstcAggregate::*field;
  const char* paper_bench;
  const char* paper_sim;
  const char* paper_ratio;
};

void RegisterDstcTable(const char* name, double memory_mb, const char* title,
                       const char* description, std::vector<DstcRow> rows,
                       const char* footer) {
  Scenario s;
  s.name = name;
  s.title = title;
  s.description = description;
  s.base.workload = DstcWorkload();
  s.base.system = core::SystemCatalog::TexasWithMemory(memory_mb);
  s.run = [memory_mb, rows = std::move(rows),
           footer](const ScenarioContext& ctx) {
    const DstcComparison cmp = RunDstcExperiment(
        ToRunOptions(ctx), memory_mb, ctx.config.workload, ctx.config.system);
    util::TextTable table({"Row", "Bench.", "Sim.", "Ratio", "Paper bench",
                           "Paper sim", "Paper ratio"});
    for (const DstcRow& row : rows) {
      const Estimate& bench = cmp.bench.*row.field;
      const Estimate& sim = cmp.sim.*row.field;
      table.AddRow({row.label, WithCi(bench), WithCi(sim),
                    util::FormatDouble(Ratio(bench, sim), 4), row.paper_bench,
                    row.paper_sim, row.paper_ratio});
    }
    PrintTable(ctx, ctx.scenario->title, table, footer);
    return DstcResult(cmp);
  };
  Register(std::move(s));
}

// --- Ablations ---------------------------------------------------------------

void RegisterAblationBufferPolicy() {
  Scenario s;
  s.name = "ablation_buffer_policy";
  s.title = "Ablation: page replacement (PGREP)";
  s.description =
      "Buffer page replacement strategies under the OCB workload with a "
      "buffer smaller than the base — the paper's §5 notes buffering "
      "strategies \"influence the performances of OODBs a lot\".";
  s.base.workload = FigureWorkload(50, 20000);
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 1200;  // ~1/4 of the base
  s.swept = {"page_replacement"};
  s.base.system.lru_k = 2;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    util::TextTable table({"PGREP", "Mean I/Os", "Hit rate"});
    for (const storage::ReplacementPolicy policy :
         {storage::ReplacementPolicy::kRandom,
          storage::ReplacementPolicy::kFifo, storage::ReplacementPolicy::kLfu,
          storage::ReplacementPolicy::kLru, storage::ReplacementPolicy::kLruK,
          storage::ReplacementPolicy::kClock,
          storage::ReplacementPolicy::kGclock}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = ctx.config.system;
            cfg.page_replacement = policy;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions);
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
            sink.Observe("hit_rate", m.HitRate());
          });
      const Estimate ios = metrics.at("total_ios");
      Note(result, "pgrep", ToString(policy), "total_ios", ios);
      Note(result, "pgrep", ToString(policy), "hit_rate",
           metrics.at("hit_rate"));
      table.AddRow({ToString(policy), WithCi(ios),
                    util::FormatDouble(metrics.at("hit_rate").mean, 3)});
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: recency-aware policies (LRU, LRU-K, CLOCK, "
               "GCLOCK) beat RANDOM/FIFO on the traversal-heavy OCB mix.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationClustering() {
  Scenario s;
  s.name = "ablation_clustering";
  s.title = "Ablation: clustering policy (CLUSTP)";
  s.description =
      "Interchangeable clustering modules (None / DSTC / Gay-Gruenwald) "
      "on the DSTC workload — the paper's stated end-goal (\"the ultimate "
      "goal is to compare different clustering strategies\").";
  s.base.workload = DstcWorkload();
  s.base.system = core::SystemCatalog::Texas();
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    auto make_policy =
        [](int which) -> std::unique_ptr<cluster::ClusteringPolicy> {
      switch (which) {
        case 1:
          return std::make_unique<cluster::DstcPolicy>();
        case 2:
          return std::make_unique<cluster::GayGruenwaldPolicy>();
        default:
          return nullptr;  // None
      }
    };
    auto policy_name = [](int which) {
      switch (which) {
        case 1:
          return "DSTC";
        case 2:
          return "GAY_GRUENWALD";
        default:
          return "NONE";
      }
    };
    ScenarioResult result;
    util::TextTable table({"CLUSTP", "Pre I/Os", "Overhead I/Os", "Post I/Os",
                           "Gain", "Clusters"});
    for (const int which : {0, 1, 2}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbSystem sys(ctx.config.system, &base,
                                  make_policy(which), seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const double pre_ios = static_cast<double>(
                sys.RunTransactionsOfKind(
                       gen, ocb::TransactionKind::kHierarchyTraversal,
                       options.transactions)
                    .total_ios);
            const core::ClusteringMetrics cm = sys.TriggerClustering();
            sys.DropBuffer();
            const double post_ios = static_cast<double>(
                sys.RunTransactionsOfKind(
                       gen, ocb::TransactionKind::kHierarchyTraversal,
                       options.transactions)
                    .total_ios);
            sink.Observe("pre_ios", pre_ios);
            sink.Observe("overhead", static_cast<double>(cm.overhead_ios));
            sink.Observe("clusters", static_cast<double>(cm.num_clusters));
            sink.Observe("post_ios", post_ios);
            sink.Observe("gain", post_ios > 0.0 ? pre_ios / post_ios : 0.0);
          });
      const Estimate pre = metrics.at("pre_ios");
      for (const auto& [metric, estimate] : metrics) {
        Note(result, "clustp", policy_name(which), metric, estimate);
      }
      table.AddRow({policy_name(which), WithCi(pre),
                    util::FormatDouble(metrics.at("overhead").mean, 0),
                    util::FormatDouble(metrics.at("post_ios").mean, 0),
                    util::FormatDouble(metrics.at("gain").mean, 2),
                    util::FormatDouble(metrics.at("clusters").mean, 0)});
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: NONE shows gain ~1 and zero overhead; both "
               "dynamic policies pay a reorganization but repay it with "
               "post-clustering usage well below pre-clustering usage.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationFailures() {
  Scenario s;
  s.name = "ablation_failures";
  s.title = "Ablation: random hazards (crash MTBF, disk faults)";
  s.description =
      "Availability cost of crashes as a function of MTBF, and of "
      "transient disk faults as a function of the fault probability "
      "(the §5 random-hazards extension).";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 10;
    wl.num_objects = 2000;
    wl.p_update = 0.2;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.swept = {"failure_mtbf_ms", "disk_fault_prob"};
  s.base.system.buffer_pages = 512;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;

    util::TextTable crash_table({"MTBF (s)", "Sim time (s)", "Crashes",
                                 "Recovery (s)", "Extra I/Os vs healthy"});
    double healthy_ios = 0.0;
    for (const double mtbf_s : {0.0, 60.0, 20.0, 5.0}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = ctx.config.system;
            cfg.failure_mtbf_ms = mtbf_s * 1000.0;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions / 2);
            const auto* injector = sys.failure_injector();
            sink.Observe("sim_s", m.sim_time_ms / 1000.0);
            sink.Observe("crashes",
                         injector
                             ? static_cast<double>(injector->stats().crashes)
                             : 0.0);
            sink.Observe(
                "recovery_s",
                injector ? injector->stats().total_recovery_ms / 1000.0
                         : 0.0);
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
          });
      const double ios = metrics.at("total_ios").mean;
      if (mtbf_s == 0.0) healthy_ios = ios;
      const std::string x =
          mtbf_s == 0.0 ? "inf" : util::FormatDouble(mtbf_s, 0);
      for (const auto& [metric, estimate] : metrics) {
        Note(result, "crash_mtbf", x, metric, estimate);
      }
      crash_table.AddRow(
          {x, WithCi(metrics.at("sim_s"), 2),
           util::FormatDouble(metrics.at("crashes").mean, 1),
           util::FormatDouble(metrics.at("recovery_s").mean, 2),
           util::FormatDouble(ios - healthy_ios, 0)});
    }
    PrintTable(ctx, "Ablation: crash MTBF", crash_table, nullptr);

    util::TextTable fault_table({"Fault prob", "Sim time (s)", "Faults",
                                 "I/Os"});
    for (const double prob : {0.0, 0.01, 0.05, 0.2}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = ctx.config.system;
            cfg.disk_fault_prob = prob;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions / 2);
            sink.Observe("sim_s", m.sim_time_ms / 1000.0);
            sink.Observe("faults",
                         static_cast<double>(
                             sys.io_subsystem().transient_faults()));
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
          });
      const std::string x = util::FormatDouble(prob, 2);
      for (const auto& [metric, estimate] : metrics) {
        Note(result, "disk_faults", x, metric, estimate);
      }
      fault_table.AddRow(
          {x, WithCi(metrics.at("sim_s"), 2),
           util::FormatDouble(metrics.at("faults").mean, 0),
           util::FormatDouble(metrics.at("total_ios").mean, 0)});
    }
    std::cout << "\n";
    PrintTable(ctx, "Ablation: transient disk faults", fault_table,
               "Expectation: crashes add I/Os (lost buffer re-reads) and "
               "downtime; transient faults stretch time while the I/O "
               "count stays constant.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationLocking() {
  Scenario s;
  s.name = "ablation_locking";
  s.title = "Ablation: lock model";
  s.description =
      "The fixed GETLOCK-delay model of the paper vs the real 2PL lock "
      "manager with wait-die, across update ratios — quantifies what the "
      "simpler model misses (blocking, restarts, tail latency).";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 10;
    wl.num_objects = 1000;
    wl.root_region = 8;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 256;
  s.base.system.num_users = 8;
  s.swept = {"p_update", "use_lock_manager"};
  s.base.system.multiprogramming_level = 8;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    ScenarioResult result;
    util::TextTable table({"PUPDATE", "Lock model", "Throughput (tps)",
                           "Restarts", "p50 (ms)", "p99 (ms)"});
    for (const double p_update : {0.0, 0.2, 0.5}) {
      ocb::OcbParameters wl = ctx.config.workload;
      wl.p_update = p_update;
      const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
      for (const bool real_locks : {false, true}) {
        const auto metrics = ReplicateMetrics(
            options, options.seed,
            [&](uint64_t seed, desp::MetricSink& sink) {
              core::VoodbConfig cfg = ctx.config.system;
              cfg.use_lock_manager = real_locks;
              core::VoodbSystem sys(cfg, &base, nullptr, seed);
              ocb::WorkloadGenerator gen(&base,
                                         desp::RandomStream(seed).Derive(1));
              const core::PhaseMetrics m =
                  sys.RunTransactions(gen, options.transactions / 2);
              const auto& h =
                  sys.transaction_manager().response_histogram();
              sink.Observe("throughput_tps", m.ThroughputTps());
              sink.Observe("restarts",
                           static_cast<double>(m.transaction_restarts));
              sink.Observe("p50_ms", h.Quantile(0.5));
              sink.Observe("p99_ms", h.Quantile(0.99));
            });
        const std::string x = util::FormatDouble(p_update, 1) +
                              (real_locks ? " 2PL" : " fixed");
        for (const auto& [metric, estimate] : metrics) {
          Note(result, "lock_model", x, metric, estimate);
        }
        table.AddRow({util::FormatDouble(p_update, 1),
                      real_locks ? "2PL wait-die" : "fixed delay",
                      WithCi(metrics.at("throughput_tps"), 2),
                      util::FormatDouble(metrics.at("restarts").mean, 0),
                      util::FormatDouble(metrics.at("p50_ms").mean, 1),
                      util::FormatDouble(metrics.at("p99_ms").mean, 1)});
      }
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: the models agree on read-only workloads; as "
               "PUPDATE grows, real locking shows restarts, lower "
               "throughput and a stretched p99 that the fixed-delay model "
               "cannot see.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationMultiprog() {
  Scenario s;
  s.name = "ablation_multiprog";
  s.title = "Ablation: multiprogramming level (MULTILVL)";
  s.description =
      "Multiprogramming level under a multi-user workload — throughput "
      "rises with admitted concurrency until the disk saturates, then "
      "degrades as working sets thrash the shared buffer.";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 20;
    wl.num_objects = 5000;
    wl.think_time_ms = 5.0;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 120;  // scarce memory: disk-bound regime
  s.swept = {"multiprogramming_level"};
  s.base.system.num_users = 32;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    util::TextTable table({"MULTILVL", "Throughput (tps)", "Resp (ms)",
                           "Disk util", "Mean I/Os"});
    for (const uint32_t multilvl : {1u, 2u, 4u, 8u, 16u}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = ctx.config.system;
            cfg.multiprogramming_level = multilvl;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions);
            sink.Observe("throughput_tps", m.ThroughputTps());
            sink.Observe("mean_response_ms", m.mean_response_ms);
            sink.Observe("disk_util", sys.io_subsystem().DiskUtilization());
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
          });
      for (const auto& [metric, estimate] : metrics) {
        Note(result, "multilvl", std::to_string(multilvl), metric, estimate);
      }
      table.AddRow({std::to_string(multilvl),
                    WithCi(metrics.at("throughput_tps"), 2),
                    util::FormatDouble(metrics.at("mean_response_ms").mean,
                                       1),
                    util::FormatDouble(metrics.at("disk_util").mean, 3),
                    util::FormatDouble(metrics.at("total_ios").mean, 0)});
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: throughput grows with MULTILVL while the disk "
               "has headroom, peaks, then *degrades* under over-admission "
               "as concurrent transactions' working sets thrash the shared "
               "buffer (watch Mean I/Os rise) — the classic reason the "
               "database scheduler caps the multiprogramming level.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationPlacement() {
  Scenario s;
  s.name = "ablation_placement";
  s.title = "Ablation: initial placement (INITPL)";
  s.description =
      "Initial placement policy (Sequential vs OptimizedSequential vs "
      "ReferenceDfs) under the OCB mixed workload on both validated "
      "configurations: system --set overrides are re-applied on top of "
      "each of the O2 and Texas presets (INITPL itself is the swept "
      "knob).";
  s.base.workload = FigureWorkload(50, 20000);
  s.swept = {"initial_placement"};
  s.base.system = core::SystemCatalog::O2();
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    util::TextTable table({"System", "INITPL", "Mean I/Os", "Hit rate"});
    for (const bool o2 : {true, false}) {
      for (const storage::PlacementPolicy placement :
           {storage::PlacementPolicy::kSequential,
            storage::PlacementPolicy::kOptimizedSequential,
            storage::PlacementPolicy::kReferenceDfs}) {
        const auto metrics = ReplicateMetrics(
            options, options.seed,
            [&](uint64_t seed, desp::MetricSink& sink) {
              core::VoodbConfig cfg = o2 ? core::SystemCatalog::O2()
                                         : core::SystemCatalog::Texas();
              cfg.event_queue = options.event_queue;
              // Re-apply the run's system overrides on this preset
              // (workload ones already shaped the base above).
              const core::ParamRegistry& registry =
                  core::ParamRegistry::Instance();
              for (const auto& [param, value] : ctx.overrides) {
                if (registry.At(param).domain ==
                    core::ParamDomain::kWorkload) {
                  continue;
                }
                registry.Set(core::ParamTarget{&cfg, nullptr}, param, value);
              }
              cfg.initial_placement = placement;
              core::VoodbSystem sys(cfg, &base, nullptr, seed);
              ocb::WorkloadGenerator gen(&base,
                                         desp::RandomStream(seed).Derive(1));
              const core::PhaseMetrics m =
                  sys.RunTransactions(gen, options.transactions);
              sink.Observe("total_ios", static_cast<double>(m.total_ios));
              sink.Observe("hit_rate", m.HitRate());
            });
        const Estimate ios = metrics.at("total_ios");
        const std::string x =
            std::string(o2 ? "O2 " : "Texas ") + ToString(placement);
        Note(result, "initpl", x, "total_ios", ios);
        Note(result, "initpl", x, "hit_rate", metrics.at("hit_rate"));
        table.AddRow({o2 ? "O2" : "Texas", ToString(placement), WithCi(ios),
                      util::FormatDouble(metrics.at("hit_rate").mean, 3)});
      }
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: when the base fits in memory (Texas), "
               "ReferenceDfs — an idealized static clustering — beats "
               "OptimizedSequential, which is what leaves room for dynamic "
               "clustering to win in Tables 6-8; under heavy thrashing "
               "(O2's 16 MB cache vs a ~26 MB base) placement differences "
               "compress because most accesses miss regardless.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationSysclass() {
  Scenario s;
  s.name = "ablation_sysclass";
  s.title = "Ablation: system class (SYSCLASS)";
  s.description =
      "The four Client-Server architectures of the generic model under "
      "identical workload and a finite network, reporting I/Os, network "
      "traffic and response time.";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 20;
    wl.num_objects = 5000;
    s.base.workload = wl;
  }
  s.base.system.network_throughput_mbps = 1.0;  // Table 3 default
  s.swept = {"system_class"};
  s.base.system.buffer_pages = 1500;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    util::TextTable table({"SYSCLASS", "Mean I/Os", "Net MB", "Resp (ms)",
                           "Throughput (tps)"});
    for (const core::SystemClass sc :
         {core::SystemClass::kCentralized, core::SystemClass::kObjectServer,
          core::SystemClass::kPageServer, core::SystemClass::kDbServer}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = ctx.config.system;
            cfg.system_class = sc;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions);
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
            sink.Observe("network_mb",
                         static_cast<double>(m.network_bytes) /
                             (1024.0 * 1024.0));
            sink.Observe("mean_response_ms", m.mean_response_ms);
            sink.Observe("throughput_tps", m.ThroughputTps());
          });
      for (const auto& [metric, estimate] : metrics) {
        Note(result, "sysclass", ToString(sc), metric, estimate);
      }
      table.AddRow({ToString(sc), WithCi(metrics.at("total_ios")),
                    util::FormatDouble(metrics.at("network_mb").mean, 2),
                    util::FormatDouble(metrics.at("mean_response_ms").mean,
                                       2),
                    util::FormatDouble(metrics.at("throughput_tps").mean,
                                       2)});
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: identical server I/Os (same buffer and "
               "placement) but network traffic PageServer > ObjectServer > "
               "DbServer > Centralized, reflected in response times.");
    return result;
  };
  Register(std::move(s));
}

void RegisterAblationVmModel() {
  Scenario s;
  s.name = "ablation_vm_model";
  s.title = "Ablation: Texas VM model knobs (Figure 11 mechanism)";
  s.description =
      "The Texas virtual-memory model's behavioural knobs "
      "(reserve-on-swizzle, hot/cold reservation insertion, "
      "dirty-on-load) on the direct-execution emulator — justifies the "
      "modelling choices that produce Figure 11's exponential "
      "degradation.";
  s.base.workload = FigureWorkload(50, 20000);
  s.base.system = core::SystemCatalog::Texas();
  s.system_config_used = false;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    struct Variant {
      const char* name;
      bool reserve;
      bool hot;
      bool dirty;
    };
    const Variant variants[] = {
        {"full model (reserve, hot, dirty)", true, true, true},
        {"cold reservations", true, false, true},
        {"no reservations", false, false, true},
        {"clean loads (no swizzle dirty)", true, true, false},
        {"plain demand paging", false, false, false},
    };
    ScenarioResult result;
    util::TextTable table({"Variant", "I/Os @8MB", "I/Os @16MB",
                           "I/Os @64MB", "8MB/64MB"});
    for (const Variant& v : variants) {
      double at[3] = {0, 0, 0};
      const double memories[3] = {8.0, 16.0, 64.0};
      for (int i = 0; i < 3; ++i) {
        const Estimate e = Replicate(
            options, options.seed, [&](uint64_t seed) {
              emu::TexasConfig cfg;
              cfg.memory_pages =
                  emu::TexasConfig::FramesForMemory(memories[i], 4096);
              cfg.reserve_references = v.reserve;
              cfg.reservations_enter_hot = v.hot;
              cfg.dirty_on_load = v.dirty;
              emu::TexasEmulator texas(cfg, &base, seed);
              ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
              return static_cast<double>(
                  texas.RunTransactions(gen, options.transactions)
                      .total_ios);
            });
        Note(result, "vm_model", v.name,
             "ios_at_" + util::FormatDouble(memories[i], 0) + "mb", e);
        at[i] = e.mean;
      }
      table.AddRow({v.name, util::FormatDouble(at[0], 0),
                    util::FormatDouble(at[1], 0),
                    util::FormatDouble(at[2], 0),
                    util::FormatDouble(at[2] > 0 ? at[0] / at[2] : 0, 1)});
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: the degradation factor under memory pressure "
               "collapses as each Texas behaviour is removed; plain demand "
               "paging is the O2-like linear baseline.");
    return result;
  };
  Register(std::move(s));
}

// --- Parallel kernel / sharding ----------------------------------------------

double WallClockMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void RegisterShardScale() {
  Scenario s;
  s.name = "shard_scale";
  s.title = "Sharded VOODB on the conservative parallel kernel";
  s.description =
      "N hash-partitioned storage-server stacks (shards) under the "
      "conservative window protocol, swept over shards x sim_threads "
      "with the total transaction count held constant.  Every "
      "sim_threads > 1 cell is digest-checked against its serial "
      "reference — the scenario FAILS on any divergence, so the "
      "identity contract (bit-identical results at any thread count) is "
      "enforced on every run, on every machine.  Wall-clock speedup "
      "additionally needs free cores.  --set multi_partition_pct=... "
      "steers the cross-shard traffic; --transactions=N is the total "
      "workload across shards.";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 20;
    wl.num_objects = 8000;
    wl.think_time_ms = 1.0;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 512;
  s.base.system.network_throughput_mbps = 1.0;
  s.base.system.num_users = 3;
  s.base.system.multi_partition_pct = 0.2;
  s.swept = {"shards", "sim_threads"};
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    util::TextTable table({"Shards", "Threads", "Txns", "Mean I/Os",
                           "Remote", "Windows", "Wall (ms)", "Identical"});
    for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
      // Total workload held constant: per-shard share of --transactions.
      const uint64_t per_shard =
          std::max<uint64_t>(1, options.transactions / shards);
      core::VoodbConfig cfg = ctx.config.system;
      cfg.shards = shards;
      uint64_t reference_digest = 0;
      core::PhaseMetrics reference;
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        if (shards == 1 && threads > 1) continue;  // no partitions to farm
        core::PhaseMetrics m;
        uint64_t digest = 0;
        uint64_t remote = 0;
        uint64_t windows = 0;
        const double wall_ms = WallClockMs([&] {
          core::ShardedVoodb sys(cfg, &base, options.seed);
          if (threads > 1) {
            exp::ThreadPool pool({threads});
            m = sys.Run(per_shard, &pool);
          } else {
            m = sys.Run(per_shard);
          }
          digest = sys.TraceDigest();
          remote = sys.remote_subtxns();
          windows = sys.kernel().Windows();
        });
        const bool is_reference = threads == 1;
        if (is_reference) {
          reference_digest = digest;
          reference = m;
        } else {
          // The acceptance gate: bit-identical to the serial run.
          VOODB_CHECK_MSG(
              digest == reference_digest &&
                  m.transactions == reference.transactions &&
                  m.total_ios == reference.total_ios &&
                  m.sim_time_ms == reference.sim_time_ms,
              "shard_scale identity violated at " << shards << " shards / "
                                                  << threads << " threads");
        }
        const std::string cell = std::to_string(shards) + "s_" +
                                 std::to_string(threads) + "t";
        Note(result, "shard_scale", cell, "total_ios",
             Estimate{static_cast<double>(m.total_ios), 0.0});
        Note(result, "shard_scale", cell, "wall_ms", Estimate{wall_ms, 0.0});
        table.AddRow({std::to_string(shards), std::to_string(threads),
                      std::to_string(m.transactions),
                      std::to_string(m.total_ios), std::to_string(remote),
                      std::to_string(windows),
                      util::FormatDouble(wall_ms, 1),
                      is_reference ? "ref" : "yes"});
      }
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Identical=yes means the cell's event digest and metrics "
               "matched the serial reference bit-for-bit (enforced; the "
               "scenario throws otherwise).");
    return result;
  };
  Register(std::move(s));
}

void RegisterFarmSpeedup() {
  Scenario s;
  s.name = "farm_speedup";
  s.title = "Replication-farm wall-clock speedup (bitwise-checked)";
  s.description =
      "Wall-clock of the parallel replication farm vs the serial path on "
      "a non-trivial VOODB workload, with a bitwise identity check "
      "between the two runs.  The paper's protocol is ~100 independent "
      "replications, so an 8-thread farm should approach 8x on 8 free "
      "cores; on a busy or small machine the ratio shrinks but the "
      "identity check still proves the farm is safe to use everywhere.  "
      "--threads=N sets the parallel leg's worker count (default 8).";
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 600;
  s.base.workload.num_classes = 20;
  s.base.workload.num_objects = 5000;
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    core::ExperimentConfig ec = ctx.config;
    ec.workload.hot_transactions =
        static_cast<uint32_t>(options.transactions);
    ec.replications = options.replications;
    ec.base_seed = options.seed;
    const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
    const size_t threads =
        options.threads == 0 ? 8 : options.threads;  // headline point: 8

    desp::ReplicationResult serial;
    desp::ReplicationResult parallel;
    const double serial_ms = WallClockMs([&] {
      ec.threads = 1;
      serial = core::Experiment::RunOnBase(ec, base);
    });
    const double parallel_ms = WallClockMs([&] {
      ec.threads = threads;
      parallel = core::Experiment::RunOnBase(ec, base);
    });

    bool identical = serial.replications() == parallel.replications();
    for (const std::string& name : serial.MetricNames()) {
      const desp::Tally& a = serial.Metric(name);
      const desp::Tally& b = parallel.Metric(name);
      identical = identical && a.count() == b.count() &&
                  a.mean() == b.mean() && a.variance() == b.variance() &&
                  a.min() == b.min() && a.max() == b.max();
    }
    VOODB_CHECK_MSG(identical,
                    "farm results diverged between the serial and "
                    "parallel paths");

    const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    util::TextTable table({"Path", "Threads", "Wall (ms)", "Mean I/Os"});
    table.AddRow({"serial", "1", util::FormatDouble(serial_ms, 1),
                  util::FormatDouble(serial.Metric("total_ios").mean(), 1)});
    table.AddRow({"farm", std::to_string(threads),
                  util::FormatDouble(parallel_ms, 1),
                  util::FormatDouble(parallel.Metric("total_ios").mean(),
                                     1)});
    PrintTable(ctx, ctx.scenario->title, table, nullptr);
    std::cout << "Speedup: " << util::FormatDouble(speedup, 2) << "x at "
              << threads << " threads ("
              << exp::ThreadPool::HardwareThreads()
              << " hardware threads); results bitwise identical: yes\n";

    ScenarioResult result;
    Note(result, "farm_speedup", std::to_string(threads) + "_threads",
         "speedup", Estimate{speedup, 0.0});
    Note(result, "farm_speedup", std::to_string(threads) + "_threads",
         "serial_ms", Estimate{serial_ms, 0.0});
    Note(result, "farm_speedup", std::to_string(threads) + "_threads",
         "parallel_ms", Estimate{parallel_ms, 0.0});
    return result;
  };
  Register(std::move(s));
}

// --- Concurrency control -----------------------------------------------------

void RegisterCcAbyss() {
  Scenario s;
  s.name = "cc_abyss";
  s.title = "Concurrency-control abyss: NUSERS x protocol contention study";
  s.description =
      "Every cc::Protocol (2PL no-wait, wait-die, deadlock detection, "
      "MVCC, OCC) swept over the number of users up to 4096 on a small "
      "hot object base — the classic many-core contention study (\"1000 "
      "cores\" style) run inside the VOODB model.  Emits throughput, "
      "abort-rate and p99 response-time curves per protocol into "
      "BENCH_cc_abyss.json.  Each run is a single deterministic "
      "simulation (seed-driven, farm-thread independent); a second leg "
      "re-runs every protocol under shards=2 at sim_threads 1 vs 2 and "
      "FAILS unless the event digests and metrics are bit-identical.  "
      "--set num_users=N caps the user grid (CI runs a tiny grid this "
      "way); --transactions=N is the floor on transactions per cell "
      "(raised to one per user).";
  {
    // Short uniform random-access transactions (the contention-study
    // shape): 8 independent accesses over a 20k-object base, 25% writes.
    // Conflicts are rare at 16 users and dense at 4096 — the sweep walks
    // the whole contention regime instead of saturating immediately.
    ocb::OcbParameters wl;
    wl.num_classes = 20;
    wl.num_objects = 20000;
    wl.p_set = 0.0;
    wl.p_simple = 0.0;
    wl.p_hierarchy = 0.0;
    wl.p_stochastic = 0.0;
    wl.p_random_access = 1.0;
    wl.random_access_count = 8;
    wl.p_update = 0.25;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 1024;
  s.base.system.use_lock_manager = true;
  s.base.system.num_users = 4096;
  s.swept = {"cc_protocol", "multiprogramming_level", "use_lock_manager"};
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ctx.config.workload);
    ScenarioResult result;
    constexpr cc::ProtocolKind kProtocols[] = {
        cc::ProtocolKind::kNoWait, cc::ProtocolKind::kWaitDie,
        cc::ProtocolKind::kDeadlockDetect, cc::ProtocolKind::kMvcc,
        cc::ProtocolKind::kOcc};

    util::TextTable table({"NUSERS", "Protocol", "Throughput (tps)",
                           "Abort rate", "p99 (ms)", "Lock p99", "IO p99",
                           "Retry", "Restarts"});
    for (const uint32_t users : {16u, 64u, 256u, 1024u, 4096u}) {
      if (users > ctx.config.system.num_users) continue;  // --set cap
      for (const cc::ProtocolKind kind : kProtocols) {
        core::VoodbConfig cfg = ctx.config.system;
        cfg.use_lock_manager = true;
        cfg.cc_protocol = kind;
        cfg.num_users = users;
        cfg.multiprogramming_level = users;
        const uint64_t txns = std::max<uint64_t>(options.transactions, users);
        core::VoodbSystem sys(cfg, &base, nullptr, options.seed);
        ocb::WorkloadGenerator gen(&base,
                                   desp::RandomStream(options.seed).Derive(1));
        const core::PhaseMetrics m = sys.RunTransactions(gen, txns);
        const double attempts = static_cast<double>(
            m.transactions + m.transaction_restarts);
        const double abort_rate =
            attempts == 0.0
                ? 0.0
                : static_cast<double>(m.transaction_restarts) / attempts;
        const double p99 = m.ResponseQuantileMs(0.99);
        const std::string x = std::to_string(users);
        const std::string name = cc::ToString(kind);
        // Critical-path attribution: where the p99 actually went (lock
        // waits vs disk vs abort/redo work), from the span tracer's
        // per-component histograms.
        const obs::ComponentHistograms& comp = m.component_histograms;
        const double lock_wait_p99 = comp.lock_wait.Quantile(0.99);
        const double io_p99 = comp.io.Quantile(0.99);
        const double retry_mean = comp.retry.mean();
        Note(result, "throughput", x, name,
             Estimate{m.ThroughputTps(), 0.0});
        Note(result, "abort_rate", x, name, Estimate{abort_rate, 0.0});
        Note(result, "p99_ms", x, name, Estimate{p99, 0.0});
        Note(result, "lock_wait_p99_ms", x, name,
             Estimate{lock_wait_p99, 0.0});
        Note(result, "io_p99_ms", x, name, Estimate{io_p99, 0.0});
        Note(result, "retry_ms", x, name, Estimate{retry_mean, 0.0});
        table.AddRow({x, name, util::FormatDouble(m.ThroughputTps(), 2),
                      util::FormatDouble(abort_rate, 3),
                      util::FormatDouble(p99, 1),
                      util::FormatDouble(lock_wait_p99, 1),
                      util::FormatDouble(io_p99, 1),
                      util::FormatDouble(retry_mean, 1),
                      std::to_string(m.transaction_restarts)});
      }
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: no-wait aborts hardest but keeps latency "
               "flat; wait-die restarts grow with contention; deadlock "
               "detection trades aborts for graph-walk waits; MVCC reads "
               "never block (aborts are write-write only); OCC collapses "
               "once the validation window fills with conflicting "
               "commits.");

    // Identity leg: every protocol must stay bit-identical under the
    // sharded driver at sim_threads > 1 (the subsystem's determinism
    // contract, enforced on every run).
    util::TextTable identity({"Protocol", "Shards", "Txns/shard", "Digest",
                              "Identical"});
    for (const cc::ProtocolKind kind : kProtocols) {
      core::VoodbConfig cfg = ctx.config.system;
      cfg.use_lock_manager = true;
      cfg.cc_protocol = kind;
      cfg.num_users = 8;
      cfg.multiprogramming_level = 8;
      cfg.shards = 2;
      const uint64_t per_shard =
          std::max<uint64_t>(1, options.transactions / 4);
      core::PhaseMetrics serial;
      uint64_t serial_digest = 0;
      {
        core::ShardedVoodb sys(cfg, &base, options.seed);
        serial = sys.Run(per_shard);
        serial_digest = sys.TraceDigest();
      }
      core::PhaseMetrics pooled;
      uint64_t pooled_digest = 0;
      {
        core::ShardedVoodb sys(cfg, &base, options.seed);
        exp::ThreadPool pool({2});
        pooled = sys.Run(per_shard, &pool);
        pooled_digest = sys.TraceDigest();
      }
      const std::string name = cc::ToString(kind);
      VOODB_CHECK_MSG(
          pooled_digest == serial_digest &&
              pooled.transactions == serial.transactions &&
              pooled.transaction_restarts == serial.transaction_restarts &&
              pooled.total_ios == serial.total_ios &&
              pooled.sim_time_ms == serial.sim_time_ms,
          "protocol " << name
                      << " diverged between sim_threads 1 and 2 under "
                         "shards=2 — the cc determinism contract is broken");
      identity.AddRow({name, "2", std::to_string(per_shard),
                       util::FormatDouble(
                           static_cast<double>(serial_digest % 100000), 0),
                       "yes"});
      result["identity/" + name + "/sharded/ok"] = 1.0;
    }
    PrintTable(ctx, "Sharded determinism per protocol (sim_threads 1 vs 2)",
               identity,
               "Identical=yes means event digest, transactions, restarts, "
               "I/Os and simulated time all matched bit-for-bit (enforced; "
               "the scenario throws otherwise).");
    return result;
  };
  Register(std::move(s));
}

void RegisterYcsbZipf() {
  Scenario s;
  s.name = "ycsb_zipf";
  s.title = "YCSB-style zipfian read/write mix under 2PL";
  s.description =
      "The cloud-serving access pattern the CC literature sweeps: every "
      "transaction is ycsb_ops_per_txn independent point accesses whose "
      "keys follow a Zipf law over the object base and whose read/write "
      "mix is a per-access coin flip.  Sweeps skew x read mix under the "
      "real lock manager and reports throughput, abort rate and p99 per "
      "cell.  The workload_source=ycsb_zipf axis this scenario pins down "
      "is available to every other scenario too — e.g. `voodb run "
      "cc_abyss --set workload_source=ycsb_zipf --set ycsb_skew=1.2` "
      "re-runs the contention study on a hotspot workload.";
  {
    ocb::OcbParameters wl;
    wl.num_classes = 10;
    wl.num_objects = 8000;
    s.base.workload = wl;
  }
  s.base.system.system_class = core::SystemClass::kCentralized;
  s.base.system.buffer_pages = 512;
  s.base.system.use_lock_manager = true;
  s.base.system.num_users = 32;
  s.base.system.multiprogramming_level = 32;
  s.base.system.workload_source = core::WorkloadSourceKind::kYcsbZipf;
  s.swept = {"ycsb_skew", "ycsb_read_pct"};
  s.run = [](const ScenarioContext& ctx) {
    const RunOptions options = ToRunOptions(ctx);
    ScenarioResult result;
    util::TextTable table({"Skew", "Read pct", "Throughput (tps)",
                           "Abort rate", "p99 (ms)", "Lock p99", "IO p99",
                           "Retry", "Restarts"});
    for (const double skew : {0.0, 0.9, 1.2}) {
      for (const double read_pct : {0.5, 0.95}) {
        // ycsb_* tunables ride on the object base's parameter block, so
        // the base is regenerated per cell (structure params are
        // unchanged — the object graph is identical every time).
        ocb::OcbParameters wl = ctx.config.workload;
        wl.ycsb_skew = skew;
        wl.ycsb_read_pct = read_pct;
        const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
        const auto metrics = ReplicateMetrics(
            options, options.seed,
            [&](uint64_t seed, desp::MetricSink& sink) {
              core::VoodbSystem sys(ctx.config.system, &base, nullptr, seed);
              // Substituted by workload_source=ycsb_zipf inside Drive.
              ocb::WorkloadGenerator gen(&base,
                                         desp::RandomStream(seed).Derive(1));
              const core::PhaseMetrics m =
                  sys.RunTransactions(gen, options.transactions);
              const double attempts = static_cast<double>(
                  m.transactions + m.transaction_restarts);
              sink.Observe("throughput_tps", m.ThroughputTps());
              sink.Observe("abort_rate",
                           attempts == 0.0
                               ? 0.0
                               : static_cast<double>(m.transaction_restarts) /
                                     attempts);
              sink.Observe("p99_ms", m.ResponseQuantileMs(0.99));
              sink.Observe("restarts",
                           static_cast<double>(m.transaction_restarts));
              // Per-component critical-path breakdown (span tracer).
              const obs::ComponentHistograms& comp = m.component_histograms;
              sink.Observe("lock_wait_p99_ms",
                           comp.lock_wait.Quantile(0.99));
              sink.Observe("io_p99_ms", comp.io.Quantile(0.99));
              sink.Observe("retry_ms", comp.retry.mean());
            });
        const std::string x = util::FormatDouble(skew, 1) + "/" +
                              util::FormatDouble(read_pct, 2);
        for (const auto& [metric, estimate] : metrics) {
          Note(result, "ycsb", x, metric, estimate);
        }
        table.AddRow(
            {util::FormatDouble(skew, 1), util::FormatDouble(read_pct, 2),
             WithCi(metrics.at("throughput_tps"), 2),
             util::FormatDouble(metrics.at("abort_rate").mean, 3),
             util::FormatDouble(metrics.at("p99_ms").mean, 1),
             util::FormatDouble(metrics.at("lock_wait_p99_ms").mean, 1),
             util::FormatDouble(metrics.at("io_p99_ms").mean, 1),
             util::FormatDouble(metrics.at("retry_ms").mean, 1),
             util::FormatDouble(metrics.at("restarts").mean, 0)});
      }
    }
    PrintTable(ctx, ctx.scenario->title, table,
               "Expectation: contention — abort rate and p99 — rises with "
               "skew and with the write fraction; at skew 0 the mix is "
               "uniform and aborts stay near zero.");
    return result;
  };
  Register(std::move(s));
}

// --- Micro benches -----------------------------------------------------------

void RegisterMicroBenches() {
  {
    Scenario s;
    s.name = "micro_parallel";
    s.title = "Micro: conservative parallel kernel speedup + identity";
    s.description =
        "A multi-partition event workload (per-partition chains plus "
        "cross-partition pings under a fixed lookahead) executed "
        "serially and on growing thread pools; every pooled run is "
        "digest-checked against the serial reference and the scenario "
        "fails on divergence.  Protocol knobs: --transactions=N sizes "
        "the chain count, --replications=N timed trials per cell.  "
        "Model parameters are not used.";
    s.system_config_used = false;
    s.run = RunMicroParallelScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro_cc";
    s.title = "Micro: concurrency-control protocol overhead + wait-die parity";
    s.description =
        "A synthetic contended lock workload driven through every "
        "cc::Protocol and through an embedded verbatim copy of the "
        "pre-subsystem wait-die LockManager; fails unless the wait_die "
        "protocol reproduces the legacy manager's commit/restart/lock "
        "counters exactly, and asserts the Transaction Manager's pooled "
        "in-flight slots stay bounded by concurrency.  Protocol knobs: "
        "--transactions=N transactions per synthetic user, "
        "--replications=N timed trials per protocol.  Model parameters "
        "are not used.";
    s.system_config_used = false;
    s.run = RunMicroCcScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro_scheduler";
    s.title = "Micro: DES kernel event throughput vs legacy kernel";
    s.description =
        "Schedule+fire throughput of every EventQueue backend against an "
        "embedded copy of the pre-refactor shared_ptr/std::function "
        "kernel.  Protocol knobs: --transactions=N chains of 200 events "
        "per trial (default 1000 = the legacy 200k-event workload), "
        "--replications=N timed trials.  Model parameters are not used.";
    s.system_config_used = false;
    s.run = RunMicroSchedulerScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro_hotpath";
    s.title = "Micro: zero-delay fast lane vs embedded heap-only baseline";
    s.description =
        "The contention-regime hot path: a ~94% zero-delay continuation "
        "storm and a strictly-positive-delay control, each timed as "
        "paired trials of the fast-lane scheduler against an embedded "
        "verbatim copy of the pre-lane heap-only kernel.  Every cell is "
        "digest-checked (baseline vs lane-off vs lane-on executed event "
        "keys) before timing and the scenario fails on divergence.  "
        "Protocol knobs: --transactions=N users (N*200 events per "
        "trial), --replications=N paired trials.  Model parameters are "
        "not used.";
    s.system_config_used = false;
    s.run = RunMicroHotpathScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro_storage";
    s.title =
        "Micro: data-oriented storage engine vs legacy map-based baseline";
    s.description =
        "Throughput of the CSR object graph + flat-frame buffer cache "
        "against an embedded copy of the pre-refactor structures "
        "(per-object std::vector<Oid> graph, unordered_map page cache) on "
        "identical traces; fails if the caches' hit/miss/eviction "
        "counters diverge.  Workload parameters shape the base "
        "(--set num_objects=..., hierarchy_depth=...); protocol knobs: "
        "--transactions=N traversals per trial, --replications=N trials.";
    // A 100k-object base: the graph outgrows the caches so the memory
    // layout (CSR vs pointer-chasing vectors) is what gets measured.
    s.base.workload.num_objects = 100000;
    s.system_config_used = false;
    s.run = RunMicroStorageScenario;
    Register(std::move(s));
  }
}

// --- Trace subsystem ---------------------------------------------------------

void RegisterTraceScenarios() {
  {
    Scenario s;
    s.name = "trace_mrc";
    s.title = "Trace: record once, exact LRU MRC in one pass";
    s.description =
        "Records one fixed-seed VOODB simulation run as an access trace, "
        "verifies a replay reproduces the recorded "
        "hit/miss/eviction/write-back counters bit-exactly, then runs the "
        "one-pass Mattson stack-distance analysis: the exact LRU "
        "hit-ratio curve for every cache size, the working-set size, "
        "reuse distances and per-class access skew.  --set trace_path=... "
        "chooses the trace file (default trace_mrc.vtrc).";
    s.base.workload = FigureWorkload(50, 20000);
    s.base.system.system_class = core::SystemClass::kCentralized;
    s.base.system.buffer_pages = 1200;
    s.run = RunTraceMrcScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig08_mrc";
    s.title = "Figure 8's cache-size curve from one trace pass";
    s.description =
        "Computes Figure 8's entire hit curve from ONE recorded O2 run: "
        "a single Mattson pass yields the exact LRU hit count at every "
        "swept cache size, cross-checked for exact equality against a "
        "full buffer-manager replay AND a fresh emulator simulation per "
        "size (the scenario fails on any divergence), and reports the "
        "MRC-vs-N-simulations speedup.";
    s.base.workload = FigureWorkload(50, 20000);
    s.base.system = core::SystemCatalog::O2WithCache(16.0);
    s.grid.Axis("memory_mb", MemoryPoints());
    s.swept = {"buffer_pages"};
    s.system_config_used = false;  // runs the O2 emulator only
    s.run = RunFig08MrcScenario;
    Register(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro_trace";
    s.title = "Micro: trace record overhead, replay throughput, MRC speedup";
    s.description =
        "The trace subsystem's micro bench (BENCH_trace.json): recording "
        "overhead against an untraced emulator run, page-stream replay "
        "throughput, and the speedup of one Mattson MRC pass over "
        "per-cache-size replays and per-cache-size simulations.  "
        "Protocol knobs: --transactions=N per trial, --replications=N "
        "timed trials; workload parameters shape the base "
        "(--set num_objects=...).";
    s.base.workload = FigureWorkload(50, 20000);
    s.system_config_used = false;
    s.run = RunMicroTraceScenario;
    Register(std::move(s));
  }
}

void RegisterAll() {
  RegisterInstanceFigure(
      "fig06", TargetSystem::kO2, 20, "Figure 6: O2, NC=20, I/Os vs NO",
      "Mean number of I/Os depending on the number of instances "
      "(500..20000) on a 20-class schema; the O2 page server with a 16 MB "
      "server cache vs its VOODB simulation.",
      {260, 480, 840, 1600, 2700, 4300}, {230, 450, 800, 1500, 2500, 4000});
  RegisterInstanceFigure(
      "fig07", TargetSystem::kO2, 50, "Figure 7: O2, NC=50, I/Os vs NO",
      "Mean number of I/Os depending on the number of instances "
      "(500..20000) on a 50-class schema; the O2 page server with a 16 MB "
      "server cache vs its VOODB simulation.",
      {420, 800, 1450, 2700, 4200, 6400}, {380, 740, 1350, 2500, 3900, 6000});
  RegisterMemoryFigure(
      "fig08", TargetSystem::kO2, "Figure 8: O2, I/Os vs cache size (MB)",
      "Mean number of I/Os depending on the server cache size (8..64 MB) "
      "on the NC=50 / NO=20000 base (~28 MB in O2): linear degradation "
      "once the base outgrows the cache.",
      {52000, 45000, 38000, 26000, 15000, 7000},
      {50000, 43000, 36000, 24000, 14000, 6500});
  RegisterInstanceFigure(
      "fig09", TargetSystem::kTexas, 20,
      "Figure 9: Texas, NC=20, I/Os vs NO",
      "Mean number of I/Os depending on the number of instances "
      "(500..20000) on a 20-class schema; the Texas persistent store on a "
      "64 MB host vs its VOODB simulation.",
      {150, 280, 500, 950, 1600, 2400}, {140, 260, 470, 900, 1500, 2300});
  RegisterInstanceFigure(
      "fig10", TargetSystem::kTexas, 50,
      "Figure 10: Texas, NC=50, I/Os vs NO",
      "Mean number of I/Os depending on the number of instances "
      "(500..20000) on a 50-class schema; the Texas persistent store on a "
      "64 MB host vs its VOODB simulation.",
      {280, 520, 950, 1900, 3100, 4700}, {260, 490, 900, 1800, 2900, 4500});
  RegisterMemoryFigure(
      "fig11", TargetSystem::kTexas,
      "Figure 11: Texas, I/Os vs main memory (MB)",
      "Mean number of I/Os depending on the host main memory (8..64 MB) "
      "on the NC=50 / NO=20000 base (~21 MB in Texas): *exponential* "
      "degradation under memory pressure driven by Texas' "
      "reserve-on-swizzle object loading policy, unlike the linear O2 "
      "curve of Figure 8.",
      {103000, 55000, 30000, 13000, 7000, 5000},
      {100000, 52000, 28000, 12000, 6500, 5000});
  RegisterDstcTable(
      "table6", 64.0,
      "Table 6: Effects of DSTC on the performances (mean number of I/Os)"
      " - mid-sized base",
      "Effects of DSTC on Texas, mid-sized base (NC=50, NO=20000, 64 MB "
      "memory).  The Benchmark column runs the Texas emulator, whose "
      "physical OIDs force a full database scan plus reference patching "
      "during reorganization; the Simulation column runs VOODB with "
      "logical OIDs — the paper analyses exactly this asymmetry.",
      {{"Pre-clustering usage", &DstcAggregate::pre, "1890.70", "1878.80",
        "1.0063"},
       {"Clustering overhead", &DstcAggregate::overhead, "12799.60",
        "354.50", "36.1060"},
       {"Post-clustering usage", &DstcAggregate::post, "330.60", "350.50",
        "0.9432"},
       {"Gain", &DstcAggregate::gain, "5.71", "5.36", "1.0652"}},
      "Reproduction targets: usage rows bench~sim (ratio ~1); overhead "
      "bench >> sim (physical vs logical OIDs); gain substantially > 1.");
  RegisterDstcTable(
      "table7", 64.0, "Table 7: DSTC clustering",
      "DSTC clustering statistics — number of clusters built and mean "
      "objects per cluster, real system (emulator) vs simulation.",
      {{"Mean number of clusters", &DstcAggregate::clusters, "82.23",
        "84.01", "0.9788"},
       {"Mean number of obj./clust.", &DstcAggregate::cluster_size, "12.83",
        "13.73", "0.9344"}},
      "Reproduction target: benchmark and simulation agree (ratio ~1), "
      "demonstrating the simulated Clustering Manager behaves like the "
      "real module.");
  RegisterDstcTable(
      "table8", 8.0,
      "Table 8: Effects of DSTC on the performances (mean number of I/Os)"
      " - 'large' base",
      "Effects of DSTC on Texas with main memory reduced from 64 MB to "
      "8 MB so the base no longer fits: the clustering gain rises "
      "dramatically (paper: from ~5.7 to ~29.5) because under memory "
      "pressure unclustered pages are evicted almost immediately.",
      {{"Pre-clustering usage", &DstcAggregate::pre, "12504.60", "12547.80",
        "0.9965"},
       {"Post-clustering usage", &DstcAggregate::post, "424.30", "441.50",
        "0.9610"},
       {"Gain", &DstcAggregate::gain, "29.47", "28.42", "1.0369"}},
      "Reproduction targets: bench~sim on every row; gain far larger than "
      "the mid-sized case of Table 6.");
  RegisterAblationBufferPolicy();
  RegisterAblationClustering();
  RegisterAblationFailures();
  RegisterAblationLocking();
  RegisterAblationMultiprog();
  RegisterAblationPlacement();
  RegisterAblationSysclass();
  RegisterAblationVmModel();
  RegisterShardScale();
  RegisterFarmSpeedup();
  RegisterCcAbyss();
  RegisterYcsbZipf();
  RegisterMicroBenches();
  RegisterTraceScenarios();
}

}  // namespace

void RegisterBenchScenarios() {
  static const bool registered = [] {
    RegisterAll();
    return true;
  }();
  (void)registered;
}

}  // namespace voodb::bench
