file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_o2_instances_nc20.dir/bench/bench_fig06_o2_instances_nc20.cpp.o"
  "CMakeFiles/bench_fig06_o2_instances_nc20.dir/bench/bench_fig06_o2_instances_nc20.cpp.o.d"
  "bench_fig06_o2_instances_nc20"
  "bench_fig06_o2_instances_nc20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_o2_instances_nc20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
