# Empty dependencies file for bench_fig06_o2_instances_nc20.
# This may be replaced when dependencies are built.
