# Empty dependencies file for bench_table6_dstc_midsize.
# This may be replaced when dependencies are built.
