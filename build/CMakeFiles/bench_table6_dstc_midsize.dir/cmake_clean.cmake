file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_dstc_midsize.dir/bench/bench_table6_dstc_midsize.cpp.o"
  "CMakeFiles/bench_table6_dstc_midsize.dir/bench/bench_table6_dstc_midsize.cpp.o.d"
  "bench_table6_dstc_midsize"
  "bench_table6_dstc_midsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_dstc_midsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
