# Empty dependencies file for bench_fig10_texas_instances_nc50.
# This may be replaced when dependencies are built.
