file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_texas_instances_nc50.dir/bench/bench_fig10_texas_instances_nc50.cpp.o"
  "CMakeFiles/bench_fig10_texas_instances_nc50.dir/bench/bench_fig10_texas_instances_nc50.cpp.o.d"
  "bench_fig10_texas_instances_nc50"
  "bench_fig10_texas_instances_nc50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_texas_instances_nc50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
