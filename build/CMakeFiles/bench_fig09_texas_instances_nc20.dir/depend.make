# Empty dependencies file for bench_fig09_texas_instances_nc20.
# This may be replaced when dependencies are built.
