file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sysclass.dir/bench/bench_ablation_sysclass.cpp.o"
  "CMakeFiles/bench_ablation_sysclass.dir/bench/bench_ablation_sysclass.cpp.o.d"
  "bench_ablation_sysclass"
  "bench_ablation_sysclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sysclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
