# Empty dependencies file for bench_ablation_sysclass.
# This may be replaced when dependencies are built.
