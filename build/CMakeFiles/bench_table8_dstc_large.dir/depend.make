# Empty dependencies file for bench_table8_dstc_large.
# This may be replaced when dependencies are built.
