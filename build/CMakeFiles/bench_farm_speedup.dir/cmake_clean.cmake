file(REMOVE_RECURSE
  "CMakeFiles/bench_farm_speedup.dir/bench/bench_farm_speedup.cpp.o"
  "CMakeFiles/bench_farm_speedup.dir/bench/bench_farm_speedup.cpp.o.d"
  "bench_farm_speedup"
  "bench_farm_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_farm_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
