# Empty dependencies file for bench_farm_speedup.
# This may be replaced when dependencies are built.
