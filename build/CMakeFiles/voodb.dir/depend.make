# Empty dependencies file for voodb.
# This may be replaced when dependencies are built.
