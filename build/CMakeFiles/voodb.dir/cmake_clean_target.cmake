file(REMOVE_RECURSE
  "libvoodb.a"
)
