
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dstc.cpp" "CMakeFiles/voodb.dir/src/cluster/dstc.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/cluster/dstc.cpp.o.d"
  "/root/repo/src/cluster/gay_gruenwald.cpp" "CMakeFiles/voodb.dir/src/cluster/gay_gruenwald.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/cluster/gay_gruenwald.cpp.o.d"
  "/root/repo/src/cluster/graph_partitioning.cpp" "CMakeFiles/voodb.dir/src/cluster/graph_partitioning.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/cluster/graph_partitioning.cpp.o.d"
  "/root/repo/src/cluster/policy.cpp" "CMakeFiles/voodb.dir/src/cluster/policy.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/cluster/policy.cpp.o.d"
  "/root/repo/src/desp/histogram.cpp" "CMakeFiles/voodb.dir/src/desp/histogram.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/histogram.cpp.o.d"
  "/root/repo/src/desp/random.cpp" "CMakeFiles/voodb.dir/src/desp/random.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/random.cpp.o.d"
  "/root/repo/src/desp/replication.cpp" "CMakeFiles/voodb.dir/src/desp/replication.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/replication.cpp.o.d"
  "/root/repo/src/desp/resource.cpp" "CMakeFiles/voodb.dir/src/desp/resource.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/resource.cpp.o.d"
  "/root/repo/src/desp/scheduler.cpp" "CMakeFiles/voodb.dir/src/desp/scheduler.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/scheduler.cpp.o.d"
  "/root/repo/src/desp/stats.cpp" "CMakeFiles/voodb.dir/src/desp/stats.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/desp/stats.cpp.o.d"
  "/root/repo/src/emu/o2_emulator.cpp" "CMakeFiles/voodb.dir/src/emu/o2_emulator.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/emu/o2_emulator.cpp.o.d"
  "/root/repo/src/emu/texas_emulator.cpp" "CMakeFiles/voodb.dir/src/emu/texas_emulator.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/emu/texas_emulator.cpp.o.d"
  "/root/repo/src/exp/executor.cpp" "CMakeFiles/voodb.dir/src/exp/executor.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/exp/executor.cpp.o.d"
  "/root/repo/src/exp/farm.cpp" "CMakeFiles/voodb.dir/src/exp/farm.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/exp/farm.cpp.o.d"
  "/root/repo/src/exp/grid.cpp" "CMakeFiles/voodb.dir/src/exp/grid.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/exp/grid.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "CMakeFiles/voodb.dir/src/exp/report.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/exp/report.cpp.o.d"
  "/root/repo/src/ocb/object_base.cpp" "CMakeFiles/voodb.dir/src/ocb/object_base.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/ocb/object_base.cpp.o.d"
  "/root/repo/src/ocb/parameters.cpp" "CMakeFiles/voodb.dir/src/ocb/parameters.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/ocb/parameters.cpp.o.d"
  "/root/repo/src/ocb/schema.cpp" "CMakeFiles/voodb.dir/src/ocb/schema.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/ocb/schema.cpp.o.d"
  "/root/repo/src/ocb/workload.cpp" "CMakeFiles/voodb.dir/src/ocb/workload.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/ocb/workload.cpp.o.d"
  "/root/repo/src/storage/buffer_manager.cpp" "CMakeFiles/voodb.dir/src/storage/buffer_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/buffer_manager.cpp.o.d"
  "/root/repo/src/storage/disk_model.cpp" "CMakeFiles/voodb.dir/src/storage/disk_model.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/disk_model.cpp.o.d"
  "/root/repo/src/storage/placement.cpp" "CMakeFiles/voodb.dir/src/storage/placement.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/placement.cpp.o.d"
  "/root/repo/src/storage/prefetch.cpp" "CMakeFiles/voodb.dir/src/storage/prefetch.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/prefetch.cpp.o.d"
  "/root/repo/src/storage/replacement.cpp" "CMakeFiles/voodb.dir/src/storage/replacement.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/replacement.cpp.o.d"
  "/root/repo/src/storage/virtual_memory.cpp" "CMakeFiles/voodb.dir/src/storage/virtual_memory.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/storage/virtual_memory.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/voodb.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/special_functions.cpp" "CMakeFiles/voodb.dir/src/util/special_functions.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/util/special_functions.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/voodb.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/util/table.cpp.o.d"
  "/root/repo/src/voodb/buffering_manager.cpp" "CMakeFiles/voodb.dir/src/voodb/buffering_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/buffering_manager.cpp.o.d"
  "/root/repo/src/voodb/catalog.cpp" "CMakeFiles/voodb.dir/src/voodb/catalog.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/catalog.cpp.o.d"
  "/root/repo/src/voodb/clustering_manager.cpp" "CMakeFiles/voodb.dir/src/voodb/clustering_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/clustering_manager.cpp.o.d"
  "/root/repo/src/voodb/config.cpp" "CMakeFiles/voodb.dir/src/voodb/config.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/config.cpp.o.d"
  "/root/repo/src/voodb/experiment.cpp" "CMakeFiles/voodb.dir/src/voodb/experiment.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/experiment.cpp.o.d"
  "/root/repo/src/voodb/failure_injector.cpp" "CMakeFiles/voodb.dir/src/voodb/failure_injector.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/failure_injector.cpp.o.d"
  "/root/repo/src/voodb/io_subsystem.cpp" "CMakeFiles/voodb.dir/src/voodb/io_subsystem.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/io_subsystem.cpp.o.d"
  "/root/repo/src/voodb/lock_manager.cpp" "CMakeFiles/voodb.dir/src/voodb/lock_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/lock_manager.cpp.o.d"
  "/root/repo/src/voodb/network.cpp" "CMakeFiles/voodb.dir/src/voodb/network.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/network.cpp.o.d"
  "/root/repo/src/voodb/object_manager.cpp" "CMakeFiles/voodb.dir/src/voodb/object_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/object_manager.cpp.o.d"
  "/root/repo/src/voodb/system.cpp" "CMakeFiles/voodb.dir/src/voodb/system.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/system.cpp.o.d"
  "/root/repo/src/voodb/transaction_manager.cpp" "CMakeFiles/voodb.dir/src/voodb/transaction_manager.cpp.o" "gcc" "CMakeFiles/voodb.dir/src/voodb/transaction_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
