# Empty dependencies file for bench_table7_dstc_clusters.
# This may be replaced when dependencies are built.
