file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_dstc_clusters.dir/bench/bench_table7_dstc_clusters.cpp.o"
  "CMakeFiles/bench_table7_dstc_clusters.dir/bench/bench_table7_dstc_clusters.cpp.o.d"
  "bench_table7_dstc_clusters"
  "bench_table7_dstc_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_dstc_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
