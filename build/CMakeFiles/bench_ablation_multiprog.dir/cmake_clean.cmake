file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiprog.dir/bench/bench_ablation_multiprog.cpp.o"
  "CMakeFiles/bench_ablation_multiprog.dir/bench/bench_ablation_multiprog.cpp.o.d"
  "bench_ablation_multiprog"
  "bench_ablation_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
