# Empty dependencies file for bench_ablation_multiprog.
# This may be replaced when dependencies are built.
