# Empty dependencies file for bench_ablation_vm_model.
# This may be replaced when dependencies are built.
