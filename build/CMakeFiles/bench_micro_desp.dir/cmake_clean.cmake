file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_desp.dir/bench/bench_micro_desp.cpp.o"
  "CMakeFiles/bench_micro_desp.dir/bench/bench_micro_desp.cpp.o.d"
  "bench_micro_desp"
  "bench_micro_desp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_desp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
