# Empty dependencies file for bench_micro_desp.
# This may be replaced when dependencies are built.
