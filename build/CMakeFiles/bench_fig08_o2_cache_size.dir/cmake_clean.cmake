file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_o2_cache_size.dir/bench/bench_fig08_o2_cache_size.cpp.o"
  "CMakeFiles/bench_fig08_o2_cache_size.dir/bench/bench_fig08_o2_cache_size.cpp.o.d"
  "bench_fig08_o2_cache_size"
  "bench_fig08_o2_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_o2_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
