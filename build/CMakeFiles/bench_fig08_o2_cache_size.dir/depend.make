# Empty dependencies file for bench_fig08_o2_cache_size.
# This may be replaced when dependencies are built.
