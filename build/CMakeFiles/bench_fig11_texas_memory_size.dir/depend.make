# Empty dependencies file for bench_fig11_texas_memory_size.
# This may be replaced when dependencies are built.
