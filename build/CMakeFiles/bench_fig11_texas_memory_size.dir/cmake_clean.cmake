file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_texas_memory_size.dir/bench/bench_fig11_texas_memory_size.cpp.o"
  "CMakeFiles/bench_fig11_texas_memory_size.dir/bench/bench_fig11_texas_memory_size.cpp.o.d"
  "bench_fig11_texas_memory_size"
  "bench_fig11_texas_memory_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_texas_memory_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
