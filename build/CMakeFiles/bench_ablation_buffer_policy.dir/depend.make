# Empty dependencies file for bench_ablation_buffer_policy.
# This may be replaced when dependencies are built.
