# Empty dependencies file for voodb_bench.
# This may be replaced when dependencies are built.
