file(REMOVE_RECURSE
  "libvoodb_bench.a"
)
