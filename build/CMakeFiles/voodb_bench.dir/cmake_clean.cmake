file(REMOVE_RECURSE
  "CMakeFiles/voodb_bench.dir/bench/harness.cpp.o"
  "CMakeFiles/voodb_bench.dir/bench/harness.cpp.o.d"
  "CMakeFiles/voodb_bench.dir/bench/sweeps.cpp.o"
  "CMakeFiles/voodb_bench.dir/bench/sweeps.cpp.o.d"
  "libvoodb_bench.a"
  "libvoodb_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voodb_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
