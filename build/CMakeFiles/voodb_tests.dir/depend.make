# Empty dependencies file for voodb_tests.
# This may be replaced when dependencies are built.
