
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_buffer_manager.cpp" "CMakeFiles/voodb_tests.dir/tests/test_buffer_manager.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_buffer_manager.cpp.o.d"
  "/root/repo/tests/test_cluster_policy.cpp" "CMakeFiles/voodb_tests.dir/tests/test_cluster_policy.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_cluster_policy.cpp.o.d"
  "/root/repo/tests/test_concurrency.cpp" "CMakeFiles/voodb_tests.dir/tests/test_concurrency.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_concurrency.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "CMakeFiles/voodb_tests.dir/tests/test_cross_validation.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_disk_model.cpp" "CMakeFiles/voodb_tests.dir/tests/test_disk_model.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_disk_model.cpp.o.d"
  "/root/repo/tests/test_dstc.cpp" "CMakeFiles/voodb_tests.dir/tests/test_dstc.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_dstc.cpp.o.d"
  "/root/repo/tests/test_emulators.cpp" "CMakeFiles/voodb_tests.dir/tests/test_emulators.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_emulators.cpp.o.d"
  "/root/repo/tests/test_exp_executor.cpp" "CMakeFiles/voodb_tests.dir/tests/test_exp_executor.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_exp_executor.cpp.o.d"
  "/root/repo/tests/test_exp_farm.cpp" "CMakeFiles/voodb_tests.dir/tests/test_exp_farm.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_exp_farm.cpp.o.d"
  "/root/repo/tests/test_exp_grid.cpp" "CMakeFiles/voodb_tests.dir/tests/test_exp_grid.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_exp_grid.cpp.o.d"
  "/root/repo/tests/test_exp_report.cpp" "CMakeFiles/voodb_tests.dir/tests/test_exp_report.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_exp_report.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "CMakeFiles/voodb_tests.dir/tests/test_experiment.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "CMakeFiles/voodb_tests.dir/tests/test_failures.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_failures.cpp.o.d"
  "/root/repo/tests/test_gay_gruenwald.cpp" "CMakeFiles/voodb_tests.dir/tests/test_gay_gruenwald.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_gay_gruenwald.cpp.o.d"
  "/root/repo/tests/test_graph_partitioning.cpp" "CMakeFiles/voodb_tests.dir/tests/test_graph_partitioning.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_graph_partitioning.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "CMakeFiles/voodb_tests.dir/tests/test_histogram.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_histogram.cpp.o.d"
  "/root/repo/tests/test_lock_manager.cpp" "CMakeFiles/voodb_tests.dir/tests/test_lock_manager.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_lock_manager.cpp.o.d"
  "/root/repo/tests/test_ocb_object_base.cpp" "CMakeFiles/voodb_tests.dir/tests/test_ocb_object_base.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_ocb_object_base.cpp.o.d"
  "/root/repo/tests/test_ocb_schema.cpp" "CMakeFiles/voodb_tests.dir/tests/test_ocb_schema.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_ocb_schema.cpp.o.d"
  "/root/repo/tests/test_ocb_workload.cpp" "CMakeFiles/voodb_tests.dir/tests/test_ocb_workload.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_ocb_workload.cpp.o.d"
  "/root/repo/tests/test_paper_validation.cpp" "CMakeFiles/voodb_tests.dir/tests/test_paper_validation.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_paper_validation.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "CMakeFiles/voodb_tests.dir/tests/test_placement.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_placement.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "CMakeFiles/voodb_tests.dir/tests/test_random.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_random.cpp.o.d"
  "/root/repo/tests/test_replacement.cpp" "CMakeFiles/voodb_tests.dir/tests/test_replacement.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_replacement.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "CMakeFiles/voodb_tests.dir/tests/test_replication.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_replication.cpp.o.d"
  "/root/repo/tests/test_resource.cpp" "CMakeFiles/voodb_tests.dir/tests/test_resource.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_resource.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "CMakeFiles/voodb_tests.dir/tests/test_scheduler.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_special_functions.cpp" "CMakeFiles/voodb_tests.dir/tests/test_special_functions.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_special_functions.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "CMakeFiles/voodb_tests.dir/tests/test_stats.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_stats.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "CMakeFiles/voodb_tests.dir/tests/test_util.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_util.cpp.o.d"
  "/root/repo/tests/test_virtual_memory.cpp" "CMakeFiles/voodb_tests.dir/tests/test_virtual_memory.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_virtual_memory.cpp.o.d"
  "/root/repo/tests/test_voodb_actors.cpp" "CMakeFiles/voodb_tests.dir/tests/test_voodb_actors.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_voodb_actors.cpp.o.d"
  "/root/repo/tests/test_voodb_config.cpp" "CMakeFiles/voodb_tests.dir/tests/test_voodb_config.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_voodb_config.cpp.o.d"
  "/root/repo/tests/test_voodb_system.cpp" "CMakeFiles/voodb_tests.dir/tests/test_voodb_system.cpp.o" "gcc" "CMakeFiles/voodb_tests.dir/tests/test_voodb_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/voodb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
