# Empty dependencies file for bench_fig07_o2_instances_nc50.
# This may be replaced when dependencies are built.
