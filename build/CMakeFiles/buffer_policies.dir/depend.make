# Empty dependencies file for buffer_policies.
# This may be replaced when dependencies are built.
