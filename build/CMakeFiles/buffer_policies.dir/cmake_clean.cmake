file(REMOVE_RECURSE
  "CMakeFiles/buffer_policies.dir/examples/buffer_policies.cpp.o"
  "CMakeFiles/buffer_policies.dir/examples/buffer_policies.cpp.o.d"
  "buffer_policies"
  "buffer_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
