# Empty dependencies file for bench_micro_buffer.
# This may be replaced when dependencies are built.
