file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_buffer.dir/bench/bench_micro_buffer.cpp.o"
  "CMakeFiles/bench_micro_buffer.dir/bench/bench_micro_buffer.cpp.o.d"
  "bench_micro_buffer"
  "bench_micro_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
