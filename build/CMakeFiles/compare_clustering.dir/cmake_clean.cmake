file(REMOVE_RECURSE
  "CMakeFiles/compare_clustering.dir/examples/compare_clustering.cpp.o"
  "CMakeFiles/compare_clustering.dir/examples/compare_clustering.cpp.o.d"
  "compare_clustering"
  "compare_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
