# Empty dependencies file for compare_clustering.
# This may be replaced when dependencies are built.
