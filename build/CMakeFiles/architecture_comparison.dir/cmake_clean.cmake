file(REMOVE_RECURSE
  "CMakeFiles/architecture_comparison.dir/examples/architecture_comparison.cpp.o"
  "CMakeFiles/architecture_comparison.dir/examples/architecture_comparison.cpp.o.d"
  "architecture_comparison"
  "architecture_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
