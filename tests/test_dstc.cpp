/// \file test_dstc.cpp
/// \brief Tests for the DSTC clustering policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/dstc.hpp"
#include "util/check.hpp"

namespace voodb::cluster {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters p;
  p.num_classes = 6;
  p.num_objects = 200;
  p.max_refs_per_class = 3;
  p.seed = 21;
  return ocb::ObjectBase::Generate(p);
}

storage::Placement DefaultPlacement(const ocb::ObjectBase& base) {
  return storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kOptimizedSequential);
}

/// Feeds a transaction (sequence of oids) to the policy.
void Feed(DstcPolicy& dstc, const std::vector<ocb::Oid>& sequence) {
  dstc.OnTransactionStart();
  for (ocb::Oid oid : sequence) dstc.OnObjectAccess(oid, false);
  dstc.OnTransactionEnd();
}

TEST(DstcParameters, Validation) {
  DstcParameters p;
  p.Validate();
  DstcParameters bad = p;
  bad.max_cluster_size = 1;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.extension_threshold = 0;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.min_link_weight = 5;
  bad.extension_threshold = 4;  // Tfe < Tfc
  EXPECT_THROW(bad.Validate(), util::Error);
}

TEST(Dstc, RecordsFrequenciesAndLinks) {
  DstcPolicy dstc;
  Feed(dstc, {1, 2, 3});
  Feed(dstc, {1, 2});
  EXPECT_EQ(dstc.ObservedTransactions(), 2u);
  EXPECT_EQ(dstc.ObservedAccesses(), 5u);
  EXPECT_EQ(dstc.TrackedObjects(), 3u);
  // Links: (1,2) twice, (2,3) once -> 2 distinct.
  EXPECT_EQ(dstc.TrackedLinks(), 2u);
}

TEST(Dstc, NoLinksAcrossTransactionBoundaries) {
  DstcPolicy dstc;
  Feed(dstc, {1});
  Feed(dstc, {2});
  EXPECT_EQ(dstc.TrackedLinks(), 0u);
}

TEST(Dstc, SelfTransitionsIgnored) {
  DstcPolicy dstc;
  Feed(dstc, {4, 4, 4});
  EXPECT_EQ(dstc.TrackedLinks(), 0u);
}

TEST(Dstc, TriggerRequiresPeriodAndStrongLinks) {
  DstcParameters params;
  params.observation_period = 3;
  params.min_link_weight = 2;
  DstcPolicy dstc(params);
  Feed(dstc, {1, 2});
  EXPECT_FALSE(dstc.ShouldTrigger());  // period not reached
  Feed(dstc, {1, 2});
  Feed(dstc, {1, 2});
  EXPECT_TRUE(dstc.ShouldTrigger());  // 3 txns, link (1,2) weight 3
}

TEST(Dstc, WeakLinksDoNotTrigger) {
  DstcParameters params;
  params.observation_period = 2;
  params.min_link_weight = 5;
  params.extension_threshold = 5;
  DstcPolicy dstc(params);
  Feed(dstc, {1, 2});
  Feed(dstc, {3, 4});
  EXPECT_FALSE(dstc.ShouldTrigger());
}

TEST(Dstc, RepeatedSequenceBecomesOneFragment) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcParameters params;
  params.max_cluster_size = 16;
  DstcPolicy dstc(params);
  const std::vector<ocb::Oid> seq = {10, 20, 30, 40, 50};
  for (int i = 0; i < 5; ++i) Feed(dstc, seq);
  const ClusteringOutcome outcome = dstc.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  ASSERT_EQ(outcome.NumClusters(), 1u);
  // The fragment contains exactly the sequence (order may start from the
  // hottest object but must cover the set).
  std::set<ocb::Oid> members(outcome.clusters[0].begin(),
                             outcome.clusters[0].end());
  EXPECT_EQ(members, std::set<ocb::Oid>(seq.begin(), seq.end()));
}

TEST(Dstc, FragmentOrderFollowsStrongestLinks) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcPolicy dstc;
  for (int i = 0; i < 4; ++i) Feed(dstc, {1, 2, 3});
  const ClusteringOutcome outcome = dstc.Recluster(base, pl);
  ASSERT_EQ(outcome.NumClusters(), 1u);
  EXPECT_EQ(outcome.clusters[0], (std::vector<ocb::Oid>{1, 2, 3}));
}

TEST(Dstc, MaxClusterSizeCapsFragments) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcParameters params;
  params.max_cluster_size = 4;
  DstcPolicy dstc(params);
  std::vector<ocb::Oid> long_seq;
  for (ocb::Oid i = 0; i < 20; ++i) long_seq.push_back(i);
  for (int r = 0; r < 3; ++r) Feed(dstc, long_seq);
  const ClusteringOutcome outcome = dstc.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  for (const auto& cluster : outcome.clusters) {
    EXPECT_LE(cluster.size(), 4u);
    EXPECT_GE(cluster.size(), 2u);
  }
}

TEST(Dstc, ThresholdsFilterOneShotTraffic) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcParameters params;
  params.min_link_weight = 2;
  params.extension_threshold = 2;
  DstcPolicy dstc(params);
  // A single pass over a sequence: all links have weight 1 -> filtered.
  Feed(dstc, {5, 6, 7, 8});
  const ClusteringOutcome outcome = dstc.Recluster(base, pl);
  EXPECT_FALSE(outcome.reorganized);
}

TEST(Dstc, ClustersAreDisjoint) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcPolicy dstc;
  for (int i = 0; i < 3; ++i) {
    Feed(dstc, {1, 2, 3, 4});
    Feed(dstc, {10, 11, 12});
    Feed(dstc, {3, 4, 5});  // overlaps the first neighbourhood
  }
  const ClusteringOutcome outcome = dstc.Recluster(base, pl);
  std::set<ocb::Oid> seen;
  for (const auto& cluster : outcome.clusters) {
    for (ocb::Oid oid : cluster) {
      EXPECT_TRUE(seen.insert(oid).second) << "object in two clusters";
    }
  }
}

TEST(Dstc, ReclusterConsumesStatistics) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  DstcPolicy dstc;
  for (int i = 0; i < 3; ++i) Feed(dstc, {1, 2, 3});
  EXPECT_GT(dstc.TrackedObjects(), 0u);
  dstc.Recluster(base, pl);
  EXPECT_EQ(dstc.TrackedObjects(), 0u);
  EXPECT_EQ(dstc.TrackedLinks(), 0u);
  // Second recluster without new observations finds nothing.
  EXPECT_FALSE(dstc.Recluster(base, pl).reorganized);
}

TEST(Dstc, ResetDropsEverything) {
  DstcPolicy dstc;
  Feed(dstc, {1, 2});
  dstc.Reset();
  EXPECT_EQ(dstc.TrackedObjects(), 0u);
  EXPECT_EQ(dstc.TrackedLinks(), 0u);
}

TEST(Dstc, DeterministicClustering) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  auto run = [&] {
    DstcPolicy dstc;
    for (int i = 0; i < 4; ++i) {
      Feed(dstc, {1, 2, 3});
      Feed(dstc, {7, 8, 9, 10});
    }
    return dstc.Recluster(base, pl).clusters;
  };
  EXPECT_EQ(run(), run());
}

/// Parameter sweep: thresholds monotonically shrink the clustered set.
class DstcThresholds : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DstcThresholds, HigherThresholdsClusterLess) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  auto clustered_objects = [&](uint32_t threshold) {
    DstcParameters params;
    params.min_link_weight = threshold;
    params.extension_threshold = threshold;
    DstcPolicy dstc(params);
    // Sequences repeated with different multiplicities.
    for (int i = 0; i < 2; ++i) Feed(dstc, {1, 2, 3});
    for (int i = 0; i < 4; ++i) Feed(dstc, {10, 11, 12});
    for (int i = 0; i < 8; ++i) Feed(dstc, {20, 21, 22});
    uint64_t total = 0;
    for (const auto& c : dstc.Recluster(base, pl).clusters) {
      total += c.size();
    }
    return total;
  };
  const uint32_t t = GetParam();
  EXPECT_GE(clustered_objects(t), clustered_objects(t * 2 + 1));
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, DstcThresholds,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace voodb::cluster
