/// \file test_failures.cpp
/// \brief Tests for the random-hazard extension (paper §5): transient
/// disk faults and system crashes with recovery.
#include <gtest/gtest.h>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/check.hpp"
#include "voodb/failure_injector.hpp"
#include "voodb/system.hpp"

namespace voodb::core {
namespace {

ocb::OcbParameters SmallWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 400;
  p.max_refs_per_class = 3;
  p.base_instance_size = 60;
  p.p_update = 0.3;
  p.seed = 91;
  return p;
}

VoodbConfig SmallConfig() {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 64;
  cfg.multiprogramming_level = 1;
  cfg.get_lock_ms = 0.0;
  cfg.release_lock_ms = 0.0;
  return cfg;
}

TEST(DiskFaults, RetriesAddTimeNotIos) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, storage::DiskParameters{5.0, 0.0, 0.0});
  io.SetFaultModel(/*fault_prob=*/0.5, /*retry_penalty_ms=*/100.0,
                   /*max_retries=*/3, desp::RandomStream(3));
  bool done = false;
  std::vector<storage::PageIo> ios;
  for (int i = 0; i < 50; ++i) {
    ios.push_back(storage::PageIo{storage::PageIo::Kind::kRead,
                                  static_cast<storage::PageId>(i * 10)});
  }
  io.Execute(std::move(ios), [&] { done = true; });
  sched.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(io.total_ios(), 50u);  // faults retry, they do not re-count
  EXPECT_GT(io.transient_faults(), 5u);
  // Time = 50 * 5ms + faults * 100ms.
  EXPECT_DOUBLE_EQ(sched.Now(),
                   250.0 + 100.0 * static_cast<double>(io.transient_faults()));
}

TEST(DiskFaults, ZeroProbabilityIsFree) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, storage::DiskParameters{5.0, 0.0, 0.0});
  io.SetFaultModel(0.0, 100.0, 3, desp::RandomStream(3));
  io.Execute({storage::PageIo{storage::PageIo::Kind::kRead, 1}}, [] {});
  sched.Run();
  EXPECT_EQ(io.transient_faults(), 0u);
  EXPECT_DOUBLE_EQ(sched.Now(), 5.0);
}

TEST(DiskFaults, RejectsBadParameters) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, {});
  EXPECT_THROW(io.SetFaultModel(1.5, 1.0, 1, desp::RandomStream(1)),
               util::Error);
  EXPECT_THROW(io.SetFaultModel(0.1, -1.0, 1, desp::RandomStream(1)),
               util::Error);
}

TEST(FailureInjector, CrashDropsBufferAndOccupiesDisk) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  desp::Scheduler sched;
  VoodbConfig cfg = SmallConfig();
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  // Dirty a few pages.
  int pending = 3;
  for (storage::PageId p = 0; p < 3; ++p) {
    buf.AccessPage(p, /*write=*/true, [&] { --pending; });
  }
  sched.Run();
  ASSERT_EQ(pending, 0);
  ASSERT_EQ(buf.DirtyPages(), 3u);

  FailureParameters fp;
  fp.mtbf_ms = 1000.0;
  fp.recovery_base_ms = 200.0;
  fp.recovery_per_dirty_page_ms = 10.0;
  FailureInjectorActor injector(&sched, fp, &buf, &io,
                                desp::RandomStream(5));
  injector.Arm();
  ASSERT_TRUE(injector.armed());
  // Run until the first crash has happened and recovery completed.
  while (injector.stats().crashes == 0 && sched.Step()) {
  }
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().dirty_pages_lost, 3u);
  EXPECT_DOUBLE_EQ(injector.stats().recovery_times.max(), 230.0);
  EXPECT_EQ(buf.DirtyPages(), 0u);        // buffer lost
  EXPECT_FALSE(buf.Contains(0));
}

TEST(FailureInjector, DisarmStopsTheHazardProcess) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  desp::Scheduler sched;
  VoodbConfig cfg = SmallConfig();
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  FailureParameters fp;
  fp.mtbf_ms = 100.0;
  FailureInjectorActor injector(&sched, fp, &buf, &io,
                                desp::RandomStream(5));
  injector.Arm();
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  sched.Run();  // drains with no crash
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FailureInjector, ZeroMtbfNeverArms) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  desp::Scheduler sched;
  VoodbConfig cfg = SmallConfig();
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  FailureParameters fp;  // mtbf 0
  FailureInjectorActor injector(&sched, fp, &buf, &io,
                                desp::RandomStream(5));
  injector.Arm();
  EXPECT_FALSE(injector.armed());
}

TEST(FailureSystem, CrashesRaiseIosAndResponseTimes) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto run = [&](double mtbf) {
    VoodbConfig cfg = SmallConfig();
    cfg.failure_mtbf_ms = mtbf;
    cfg.recovery_base_ms = 400.0;
    VoodbSystem sys(cfg, &base, nullptr, 3);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
    return sys.RunTransactions(gen, 150);
  };
  const PhaseMetrics calm = run(0.0);
  const PhaseMetrics stormy = run(3000.0);  // crashes every ~3 sim-seconds
  EXPECT_EQ(calm.transactions, 150u);
  EXPECT_EQ(stormy.transactions, 150u);  // all work still completes
  // Re-reading dropped pages costs extra I/Os, and recovery stalls
  // stretch both response times and the simulated clock.
  EXPECT_GT(stormy.total_ios, calm.total_ios);
  EXPECT_GT(stormy.sim_time_ms, calm.sim_time_ms);
}

TEST(FailureSystem, InjectorStatsExposed) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = SmallConfig();
  cfg.failure_mtbf_ms = 2000.0;
  VoodbSystem sys(cfg, &base, nullptr, 3);
  ASSERT_NE(sys.failure_injector(), nullptr);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  sys.RunTransactions(gen, 200);
  EXPECT_GE(sys.failure_injector()->stats().crashes, 1u);
  EXPECT_GT(sys.failure_injector()->stats().total_recovery_ms, 0.0);
}

TEST(FailureSystem, TransientFaultsSlowTheDiskOnly) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto run = [&](double prob) {
    VoodbConfig cfg = SmallConfig();
    cfg.disk_fault_prob = prob;
    cfg.disk_fault_retry_ms = 50.0;
    VoodbSystem sys(cfg, &base, nullptr, 3);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
    const PhaseMetrics m = sys.RunTransactions(gen, 100);
    return std::make_pair(m.total_ios, m.sim_time_ms);
  };
  const auto [ios_calm, time_calm] = run(0.0);
  const auto [ios_faulty, time_faulty] = run(0.2);
  EXPECT_EQ(ios_calm, ios_faulty);  // same logical I/O count
  EXPECT_GT(time_faulty, time_calm);
}

}  // namespace
}  // namespace voodb::core
