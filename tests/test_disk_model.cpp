/// \file test_disk_model.cpp
/// \brief Tests for the Fig. 5 disk service-time model.
#include <gtest/gtest.h>

#include "storage/disk_model.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

TEST(DiskModel, FirstAccessPaysFullCost) {
  DiskModel disk(DiskParameters{7.4, 4.3, 0.5});
  EXPECT_DOUBLE_EQ(disk.AccessTime(10), 7.4 + 4.3 + 0.5);
}

TEST(DiskModel, ContiguousAccessSkipsSearch) {
  DiskModel disk(DiskParameters{7.4, 4.3, 0.5});
  disk.AccessTime(10);
  // Fig. 5: "[Page contiguous to previously loaded page]" -> latency +
  // transfer only.
  EXPECT_DOUBLE_EQ(disk.AccessTime(11), 4.3 + 0.5);
  EXPECT_DOUBLE_EQ(disk.AccessTime(11), 4.3 + 0.5);  // same page: no seek
  EXPECT_EQ(disk.sequential_hits(), 2u);
}

TEST(DiskModel, NonContiguousPaysSearchAgain) {
  DiskModel disk(DiskParameters{7.4, 4.3, 0.5});
  disk.AccessTime(10);
  EXPECT_DOUBLE_EQ(disk.AccessTime(50), 7.4 + 4.3 + 0.5);
  EXPECT_DOUBLE_EQ(disk.AccessTime(49), 7.4 + 4.3 + 0.5);  // backwards seek
}

TEST(DiskModel, ResetHeadForgetsPosition) {
  DiskModel disk(DiskParameters{7.4, 4.3, 0.5});
  disk.AccessTime(10);
  disk.ResetHead();
  EXPECT_DOUBLE_EQ(disk.AccessTime(11), 7.4 + 4.3 + 0.5);
}

TEST(DiskModel, CountsReadsAndWrites) {
  DiskModel disk;
  disk.IoTime(PageIo{PageIo::Kind::kRead, 1});
  disk.IoTime(PageIo{PageIo::Kind::kRead, 2});
  disk.IoTime(PageIo{PageIo::Kind::kWrite, 3});
  EXPECT_EQ(disk.reads(), 2u);
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.total_ios(), 3u);
}

TEST(DiskModel, Table4Presets) {
  // O2 host: 6.3 / 2.99 / 0.7 ms.
  DiskModel o2(DiskParameters{6.3, 2.99, 0.7});
  EXPECT_DOUBLE_EQ(o2.AccessTime(0), 9.99);
  // Texas host: 7.4 / 4.3 / 0.5 ms (Table 3 defaults).
  DiskModel texas;
  EXPECT_DOUBLE_EQ(texas.AccessTime(0), 12.2);
}

TEST(DiskModel, RejectsNegativeTimings) {
  EXPECT_THROW(DiskModel(DiskParameters{-1.0, 1.0, 1.0}), util::Error);
}

}  // namespace
}  // namespace voodb::storage
