/// \file test_paper_validation.cpp
/// \brief Scaled-down integration tests mirroring the paper's validation
/// experiments (§4): for every figure and table, the *tendency* the paper
/// reports must hold, and the simulation ("Simulation" series) must agree
/// with the direct-execution emulator ("Benchmark" series).
///
/// These use reduced object counts and few replications so the whole
/// suite stays fast; the bench/ harnesses run the full-size versions.
#include <gtest/gtest.h>

#include "cluster/dstc.hpp"
#include "emu/o2_emulator.hpp"
#include "emu/texas_emulator.hpp"
#include "voodb/catalog.hpp"
#include "voodb/experiment.hpp"
#include "voodb/system.hpp"

namespace voodb {
namespace {

/// Scaled-down OCB base: 1/10th of the paper's reference base.
ocb::OcbParameters ScaledWorkload(uint32_t nc, uint64_t no) {
  ocb::OcbParameters p;
  p.num_classes = nc;
  p.num_objects = no;
  p.hot_transactions = 200;
  p.seed = 1999;
  return p;
}

double SimulatedO2Ios(const ocb::ObjectBase& base, uint64_t cache_pages) {
  core::VoodbConfig cfg = core::SystemCatalog::O2();
  cfg.buffer_pages = cache_pages;
  core::VoodbSystem sys(cfg, &base, nullptr, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(7));
  return static_cast<double>(sys.RunTransactions(gen, 200).total_ios);
}

double EmulatedO2Ios(const ocb::ObjectBase& base, uint64_t cache_pages) {
  emu::O2Config cfg;
  cfg.cache_pages = cache_pages;
  emu::O2Emulator o2(cfg, &base, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(17));
  return static_cast<double>(o2.RunTransactions(gen, 200).total_ios);
}

double SimulatedTexasIos(const ocb::ObjectBase& base, uint64_t frames) {
  core::VoodbConfig cfg = core::SystemCatalog::Texas();
  cfg.buffer_pages = frames;
  core::VoodbSystem sys(cfg, &base, nullptr, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(7));
  return static_cast<double>(sys.RunTransactions(gen, 200).total_ios);
}

double EmulatedTexasIos(const ocb::ObjectBase& base, uint64_t frames) {
  emu::TexasConfig cfg;
  cfg.memory_pages = frames;
  emu::TexasEmulator texas(cfg, &base, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(17));
  return static_cast<double>(texas.RunTransactions(gen, 200).total_ios);
}

// --- Figures 6/7 and 9/10: I/Os grow with the number of instances -------

TEST(PaperFigures, IosGrowWithInstances_O2) {
  double previous = 0.0;
  for (uint64_t no : {500u, 1000u, 2000u}) {
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ScaledWorkload(20, no));
    const double ios = EmulatedO2Ios(base, 1024);
    EXPECT_GT(ios, previous) << "NO=" << no;
    previous = ios;
  }
}

TEST(PaperFigures, IosGrowWithInstances_Texas) {
  double previous = 0.0;
  for (uint64_t no : {500u, 1000u, 2000u}) {
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ScaledWorkload(20, no));
    const double ios = EmulatedTexasIos(base, 4096);
    EXPECT_GT(ios, previous) << "NO=" << no;
    previous = ios;
  }
}

TEST(PaperFigures, MoreClassesMeanBiggerBaseAndMoreIos) {
  // Figures 6 vs 7 (and 9 vs 10): at the same NO, the 50-class schema
  // holds larger objects and costs more I/Os than the 20-class schema.
  const ocb::ObjectBase base20 =
      ocb::ObjectBase::Generate(ScaledWorkload(20, 2000));
  const ocb::ObjectBase base50 =
      ocb::ObjectBase::Generate(ScaledWorkload(50, 2000));
  EXPECT_GT(EmulatedTexasIos(base50, 8192), EmulatedTexasIos(base20, 8192));
  EXPECT_GT(EmulatedO2Ios(base50, 8192), EmulatedO2Ios(base20, 8192));
}

TEST(PaperFigures, SimulationTracksBenchmark_O2) {
  // The paper's central validation claim: simulated and measured I/Os
  // "lightly differ in absolute value but bear the same tendency".
  for (uint64_t no : {1000u, 2000u}) {
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ScaledWorkload(20, no));
    const double bench = EmulatedO2Ios(base, 512);
    const double sim = SimulatedO2Ios(base, 512);
    EXPECT_NEAR(sim / bench, 1.0, 0.25) << "NO=" << no;
  }
}

TEST(PaperFigures, SimulationTracksBenchmark_Texas) {
  for (uint64_t no : {1000u, 2000u}) {
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(ScaledWorkload(20, no));
    const double bench = EmulatedTexasIos(base, 1024);
    const double sim = SimulatedTexasIos(base, 1024);
    EXPECT_NEAR(sim / bench, 1.0, 0.25) << "NO=" << no;
  }
}

// --- Figure 8: O2 cache sweep --------------------------------------------

TEST(PaperFigures, O2DegradesWhenBaseOutgrowsCache) {
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(ScaledWorkload(50, 2000));
  // Cache sweep: shrinking cache raises I/Os monotonically; the floor is
  // reached once everything fits.
  const double huge = EmulatedO2Ios(base, 4096);
  const double half = EmulatedO2Ios(base, 350);
  const double tiny = EmulatedO2Ios(base, 80);
  EXPECT_GT(tiny, half);
  EXPECT_GT(half, huge);
}

// --- Figure 11: Texas memory sweep (exponential degradation) ------------

TEST(PaperFigures, TexasDegradationIsSuperlinear) {
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(ScaledWorkload(50, 2000));
  // Fig. 11 vs Fig. 8: when memory halves below the base size, Texas'
  // I/Os grow *faster* than proportionally (reserve-on-swizzle swap),
  // unlike the linear degradation of the O2 cache.
  const double fits = EmulatedTexasIos(base, 4096);
  const double half = EmulatedTexasIos(base, 300);
  const double quarter = EmulatedTexasIos(base, 150);
  EXPECT_GT(half, fits);
  // Halving memory again more than doubles the cost increase.
  EXPECT_GT(quarter - half, half - fits);
}

TEST(PaperFigures, TexasWritesAppearOnlyUnderPressure) {
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(ScaledWorkload(50, 2000));
  emu::TexasConfig small;
  small.memory_pages = 200;
  emu::TexasEmulator pressured(small, &base, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(17));
  EXPECT_GT(pressured.RunTransactions(gen, 200).writes, 0u);
  emu::TexasConfig big;
  big.memory_pages = 100000;
  emu::TexasEmulator relaxed(big, &base, 7);
  ocb::WorkloadGenerator gen2(&base, desp::RandomStream(17));
  EXPECT_EQ(relaxed.RunTransactions(gen2, 200).writes, 0u);
}

// --- Tables 6-8: DSTC ------------------------------------------------------

struct DstcRun {
  double pre = 0.0;
  double overhead = 0.0;
  double post = 0.0;
  uint64_t clusters = 0;
  double mean_size = 0.0;
  double Gain() const { return post > 0.0 ? pre / post : 0.0; }
};

ocb::OcbParameters DstcWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 50;
  p.num_objects = 2000;
  p.hierarchy_depth = 3;
  p.root_region = 10;
  p.seed = 1999;
  return p;
}

DstcRun RunDstcOnEmulator(const ocb::ObjectBase& base, uint64_t frames) {
  emu::TexasConfig cfg;
  cfg.memory_pages = frames;
  emu::TexasEmulator texas(cfg, &base, 7);
  texas.SetClusteringPolicy(std::make_unique<cluster::DstcPolicy>());
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(17));
  DstcRun run;
  run.pre = static_cast<double>(
      texas
          .RunTransactionsOfKind(gen,
                                 ocb::TransactionKind::kHierarchyTraversal,
                                 200)
          .total_ios);
  const emu::TexasClusteringMetrics cm = texas.PerformClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = cm.num_clusters;
  run.mean_size = cm.mean_cluster_size;
  texas.DropMemory();
  run.post = static_cast<double>(
      texas
          .RunTransactionsOfKind(gen,
                                 ocb::TransactionKind::kHierarchyTraversal,
                                 200)
          .total_ios);
  return run;
}

DstcRun RunDstcOnSimulation(const ocb::ObjectBase& base, uint64_t frames) {
  core::VoodbConfig cfg = core::SystemCatalog::Texas();
  cfg.buffer_pages = frames;
  core::VoodbSystem sys(cfg, &base, std::make_unique<cluster::DstcPolicy>(),
                        7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(29));
  DstcRun run;
  run.pre = static_cast<double>(
      sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                                200)
          .total_ios);
  const core::ClusteringMetrics cm = sys.TriggerClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = cm.num_clusters;
  run.mean_size = cm.mean_cluster_size;
  sys.DropBuffer();
  run.post = static_cast<double>(
      sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                                200)
          .total_ios);
  return run;
}

TEST(PaperTables, Table6_DstcImprovesUsageAndOverheadGapIsPhysicalOids) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(DstcWorkload());
  const DstcRun bench = RunDstcOnEmulator(base, 100000);  // base fits
  const DstcRun sim = RunDstcOnSimulation(base, 100000);
  // Clustering improves usage in both worlds.
  EXPECT_GT(bench.Gain(), 1.3);
  EXPECT_GT(sim.Gain(), 1.3);
  // Usage phases agree between benchmark and simulation.
  EXPECT_NEAR(sim.pre / bench.pre, 1.0, 0.25);
  EXPECT_NEAR(sim.post / bench.post, 1.0, 0.25);
  // The paper's flagrant inconsistency: physical OIDs make the real
  // system's clustering overhead far larger than the simulated one.
  EXPECT_GT(bench.overhead / sim.overhead, 3.0);
}

TEST(PaperTables, Table7_ClusterStatisticsAgree) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(DstcWorkload());
  const DstcRun bench = RunDstcOnEmulator(base, 100000);
  const DstcRun sim = RunDstcOnSimulation(base, 100000);
  ASSERT_GT(bench.clusters, 0u);
  ASSERT_GT(sim.clusters, 0u);
  // Both worlds run the same DSTC module on the same workload model, so
  // cluster counts and sizes agree closely (paper ratios 0.98 / 0.93).
  EXPECT_NEAR(static_cast<double>(sim.clusters) /
                  static_cast<double>(bench.clusters),
              1.0, 0.15);
  EXPECT_NEAR(sim.mean_size / bench.mean_size, 1.0, 0.15);
  EXPECT_GE(bench.mean_size, 2.0);
}

TEST(PaperTables, Table8_GainExplodesWhenBaseOutgrowsMemory) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(DstcWorkload());
  const DstcRun fits = RunDstcOnEmulator(base, 100000);
  const DstcRun tight = RunDstcOnEmulator(base, 120);
  // "The gain induced by clustering is much higher when the database
  // does not wholly fit into the main memory."
  EXPECT_GT(tight.Gain(), 2.0 * fits.Gain());
  EXPECT_GT(tight.pre, fits.pre);  // thrashing inflates pre-usage
}

}  // namespace
}  // namespace voodb
