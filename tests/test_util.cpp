/// \file test_util.cpp
/// \brief Tests for the utility layer (checks, tables, CLI parsing).
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace voodb::util {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    VOODB_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  VOODB_CHECK(true);
  VOODB_CHECK_MSG(2 + 2 == 4, "never shown");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, FormatsDoubles) {
  TextTable t({"a", "b"});
  t.AddNumericRow({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1.23,2.00\n");
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(CliArgs, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--flag"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(args.GetBool("flag", false));
  EXPECT_EQ(args.GetString("missing", "def"), "def");
  args.RejectUnknown();
}

TEST(CliArgs, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--oops=1"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.RejectUnknown(), Error);
}

TEST(CliArgs, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.GetInt("n", 0), Error);
  const char* argv2[] = {"prog", "--b=maybe"};
  CliArgs args2(2, argv2);
  EXPECT_THROW(args2.GetBool("b", false), Error);
  const char* argv3[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv3), Error);
}

TEST(CliArgs, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.help_requested());
}

TEST(CliArgs, BoolSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.GetBool("a", false));
  EXPECT_FALSE(args.GetBool("b", true));
  EXPECT_TRUE(args.GetBool("c", false));
  EXPECT_FALSE(args.GetBool("d", true));
}

}  // namespace
}  // namespace voodb::util
