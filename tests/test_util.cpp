/// \file test_util.cpp
/// \brief Tests for the utility layer (checks, tables, CLI parsing).
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace voodb::util {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    VOODB_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  VOODB_CHECK(true);
  VOODB_CHECK_MSG(2 + 2 == 4, "never shown");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, FormatsDoubles) {
  TextTable t({"a", "b"});
  t.AddNumericRow({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1.23,2.00\n");
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(CliArgs, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--flag"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(args.GetBool("flag", false));
  EXPECT_EQ(args.GetString("missing", "def"), "def");
  args.RejectUnknown();
}

TEST(CliArgs, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--oops=1"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.RejectUnknown(), Error);
}

TEST(CliArgs, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.GetInt("n", 0), Error);
  const char* argv2[] = {"prog", "--b=maybe"};
  CliArgs args2(2, argv2);
  EXPECT_THROW(args2.GetBool("b", false), Error);
  const char* argv3[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv3), Error);
}

TEST(CliArgs, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.help_requested());
}

TEST(CliArgs, BoolSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.GetBool("a", false));
  EXPECT_FALSE(args.GetBool("b", true));
  EXPECT_TRUE(args.GetBool("c", false));
  EXPECT_FALSE(args.GetBool("d", true));
}

TEST(CliArgs, HelpGeneratedFromDeclarations) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  args.GetInt("replications", 10, "replications per point");
  args.GetBool("csv", false, "CSV output");
  args.GetString("json", "out.json", "result file");
  const std::string help = args.Help();
  EXPECT_NE(help.find("--replications=N"), std::string::npos) << help;
  EXPECT_NE(help.find("replications per point (default 10)"),
            std::string::npos)
      << help;
  EXPECT_NE(help.find("--csv"), std::string::npos) << help;
  EXPECT_NE(help.find("--json=S"), std::string::npos) << help;
  EXPECT_NE(help.find("(default out.json)"), std::string::npos) << help;
}

TEST(CliArgs, UnknownFlagSuggestsNearestDeclaredName) {
  const char* argv[] = {"prog", "--replication=5"};
  CliArgs args(2, argv);
  args.GetInt("replications", 10);
  args.GetInt("transactions", 1000);
  try {
    args.RejectUnknown();
    FAIL() << "expected util::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--replications"),
              std::string::npos)
        << e.what();
  }
}

TEST(CliArgs, GetListCollectsRepeatedFlags) {
  const char* argv[] = {"prog", "--set=a=1", "--set", "b=2", "--set=c=3"};
  CliArgs args(5, argv);
  const std::vector<std::string> sets = args.GetList("set");
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], "a=1");
  EXPECT_EQ(sets[1], "b=2");
  EXPECT_EQ(sets[2], "c=3");
  args.RejectUnknown();
  // Scalar reads of a repeated flag keep the last occurrence.
  const char* argv2[] = {"prog", "--n=1", "--n=2"};
  CliArgs args2(3, argv2);
  EXPECT_EQ(args2.GetInt("n", 0), 2);
}

TEST(CliArgs, PositionalArgumentsAreOptIn) {
  const char* argv[] = {"prog", "run", "fig08", "--csv"};
  CliArgs args(4, argv, /*allow_positional=*/true);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "fig08");
  EXPECT_TRUE(args.GetBool("csv", false));
  args.RejectUnknown();
}

}  // namespace
}  // namespace voodb::util
