/// \file test_buffer_manager.cpp
/// \brief Tests for the Buffering Manager's page cache.
#include <gtest/gtest.h>

#include <set>

#include "storage/buffer_manager.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

uint64_t CountReads(const std::vector<PageIo>& ios) {
  uint64_t n = 0;
  for (const auto& io : ios) n += io.kind == PageIo::Kind::kRead ? 1 : 0;
  return n;
}

uint64_t CountWrites(const std::vector<PageIo>& ios) {
  uint64_t n = 0;
  for (const auto& io : ios) n += io.kind == PageIo::Kind::kWrite ? 1 : 0;
  return n;
}

TEST(BufferManager, MissThenHit) {
  BufferManager buf(4, ReplacementPolicy::kLru);
  const AccessOutcome miss = buf.Access(7, false);
  EXPECT_FALSE(miss.hit);
  ASSERT_EQ(miss.ios.size(), 1u);
  EXPECT_EQ(miss.ios[0].kind, PageIo::Kind::kRead);
  EXPECT_EQ(miss.ios[0].page, 7u);
  const AccessOutcome hit = buf.Access(7, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_TRUE(hit.ios.empty());
  EXPECT_EQ(buf.stats().hits, 1u);
  EXPECT_EQ(buf.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(buf.stats().HitRate(), 0.5);
}

TEST(BufferManager, CapacityEnforced) {
  BufferManager buf(3, ReplacementPolicy::kLru);
  for (PageId p = 0; p < 10; ++p) buf.Access(p, false);
  EXPECT_EQ(buf.resident_pages(), 3u);
  EXPECT_EQ(buf.stats().evictions, 7u);
}

TEST(BufferManager, DirtyEvictionWritesBack) {
  BufferManager buf(2, ReplacementPolicy::kLru);
  buf.Access(1, true);  // dirty
  buf.Access(2, false);
  const AccessOutcome out = buf.Access(3, false);  // evicts 1 (LRU, dirty)
  EXPECT_EQ(CountWrites(out.ios), 1u);
  EXPECT_EQ(out.ios[0].page, 1u);
  EXPECT_EQ(CountReads(out.ios), 1u);
  EXPECT_EQ(buf.stats().writebacks, 1u);
}

TEST(BufferManager, CleanEvictionIsSilent) {
  BufferManager buf(2, ReplacementPolicy::kLru);
  buf.Access(1, false);
  buf.Access(2, false);
  const AccessOutcome out = buf.Access(3, false);
  EXPECT_EQ(CountWrites(out.ios), 0u);
}

TEST(BufferManager, WriteHitDirtiesExistingPage) {
  BufferManager buf(2, ReplacementPolicy::kLru);
  buf.Access(1, false);
  buf.Access(1, true);  // now dirty via hit
  buf.Access(2, false);
  const AccessOutcome out = buf.Access(3, false);  // evicts 1
  EXPECT_EQ(CountWrites(out.ios), 1u);
}

TEST(BufferManager, FlushAllWritesDirtyOnly) {
  BufferManager buf(4, ReplacementPolicy::kLru);
  buf.Access(1, true);
  buf.Access(2, false);
  buf.Access(3, true);
  const std::vector<PageIo> flushed = buf.FlushAll();
  EXPECT_EQ(flushed.size(), 2u);
  // Second flush: nothing dirty.
  EXPECT_TRUE(buf.FlushAll().empty());
  EXPECT_EQ(buf.resident_pages(), 3u);  // pages stay resident
}

TEST(BufferManager, DropAllDiscardsWithoutWrites) {
  BufferManager buf(4, ReplacementPolicy::kLru);
  buf.Access(1, true);
  buf.DropAll();
  EXPECT_EQ(buf.resident_pages(), 0u);
  EXPECT_FALSE(buf.Contains(1));
  // Re-admitting works fine.
  EXPECT_FALSE(buf.Access(1, false).hit);
}

TEST(BufferManager, ResizeShrinkEvicts) {
  BufferManager buf(4, ReplacementPolicy::kLru);
  for (PageId p = 0; p < 4; ++p) buf.Access(p, true);
  const std::vector<PageIo> evicted = buf.Resize(2);
  EXPECT_EQ(buf.resident_pages(), 2u);
  EXPECT_EQ(CountWrites(evicted), 2u);
  EXPECT_EQ(buf.capacity(), 2u);
}

TEST(BufferManager, ResizeShrinkWritesBackInEvictionOrder) {
  // LRU makes the victim sequence deterministic: the least recently used
  // dirty pages are written back oldest-first.
  BufferManager buf(8, ReplacementPolicy::kLru);
  for (PageId p = 0; p < 8; ++p) buf.Access(p, true);
  const std::vector<PageIo> ios = buf.Resize(3);
  ASSERT_EQ(ios.size(), 5u);
  for (size_t i = 0; i < ios.size(); ++i) {
    EXPECT_EQ(ios[i].kind, PageIo::Kind::kWrite);
    EXPECT_EQ(ios[i].page, static_cast<PageId>(i));
  }
  for (PageId p = 0; p < 5; ++p) EXPECT_FALSE(buf.Contains(p));
  for (PageId p = 5; p < 8; ++p) EXPECT_TRUE(buf.Contains(p));
}

TEST(BufferManager, ResizeGrowKeepsResidentsAndExtendsCapacity) {
  BufferManager buf(2, ReplacementPolicy::kLru);
  buf.Access(1, true);
  buf.Access(2, false);
  const std::vector<PageIo> ios = buf.Resize(6);
  EXPECT_TRUE(ios.empty());  // growing never evicts
  EXPECT_EQ(buf.capacity(), 6u);
  EXPECT_TRUE(buf.Contains(1));
  EXPECT_TRUE(buf.Contains(2));
  EXPECT_EQ(buf.DirtyPages(), 1u);
  // The widened buffer actually holds 6 pages before evicting again.
  for (PageId p = 3; p <= 6; ++p) buf.Access(p, false);
  EXPECT_EQ(buf.resident_pages(), 6u);
  EXPECT_EQ(buf.stats().evictions, 0u);
  buf.Access(7, false);
  EXPECT_EQ(buf.resident_pages(), 6u);
  EXPECT_EQ(buf.stats().evictions, 1u);
}

TEST(BufferManager, ResizeRejectsZeroCapacity) {
  BufferManager buf(4, ReplacementPolicy::kLru);
  EXPECT_THROW(buf.Resize(0), util::Error);
}

/// Shrink/grow across every policy: stats invariants hold, clean pages
/// evict silently, dirty pages write back exactly once, and the buffer
/// keeps working at the new capacity.
class ResizePolicies : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(ResizePolicies, ShrinkGrowCycleKeepsInvariants) {
  BufferManager buf(16, GetParam());
  desp::RandomStream rng(23);
  for (int i = 0; i < 600; ++i) {
    buf.Access(static_cast<PageId>(rng.UniformInt(0, 59)),
               rng.Bernoulli(0.4));
  }
  // Shrink: every eviction of a dirty page produces exactly one write.
  const uint64_t dirty_before = buf.DirtyPages();
  const uint64_t resident_before = buf.resident_pages();
  uint64_t expected_writebacks = buf.stats().writebacks;
  const std::vector<PageIo> shrink_ios = buf.Resize(5);
  EXPECT_EQ(buf.capacity(), 5u);
  EXPECT_EQ(buf.resident_pages(), 5u);
  EXPECT_EQ(CountReads(shrink_ios), 0u);
  const uint64_t evicted = resident_before - 5;
  EXPECT_LE(CountWrites(shrink_ios), evicted);
  EXPECT_GE(dirty_before, CountWrites(shrink_ios));
  EXPECT_EQ(dirty_before - CountWrites(shrink_ios), buf.DirtyPages());
  expected_writebacks += CountWrites(shrink_ios);
  EXPECT_EQ(buf.stats().writebacks, expected_writebacks);
  // No page is written back twice: each write targets a distinct page.
  std::set<PageId> written;
  for (const PageIo& io : shrink_ios) {
    EXPECT_TRUE(written.insert(io.page).second)
        << "page " << io.page << " written back twice";
    EXPECT_FALSE(buf.Contains(io.page));
  }
  // Grow back and keep running: the accounting identity still holds.
  EXPECT_TRUE(buf.Resize(32).empty());
  for (int i = 0; i < 600; ++i) {
    buf.Access(static_cast<PageId>(rng.UniformInt(0, 59)),
               rng.Bernoulli(0.4));
  }
  const BufferStats& s = buf.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(buf.resident_pages(), 32u);
  EXPECT_EQ(s.misses - buf.resident_pages(), s.evictions);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ResizePolicies,
    ::testing::Values(ReplacementPolicy::kRandom, ReplacementPolicy::kFifo,
                      ReplacementPolicy::kLfu, ReplacementPolicy::kLru,
                      ReplacementPolicy::kLruK, ReplacementPolicy::kClock,
                      ReplacementPolicy::kGclock));

TEST(BufferManager, SequentialPrefetchLoadsAhead) {
  BufferManager buf(10, ReplacementPolicy::kLru);
  buf.SetPrefetcher(std::make_unique<SequentialPrefetcher>(2, 100));
  const AccessOutcome out = buf.Access(5, false);
  // Read of 5 plus prefetch of 6 and 7.
  EXPECT_EQ(CountReads(out.ios), 3u);
  EXPECT_TRUE(buf.Contains(6));
  EXPECT_TRUE(buf.Contains(7));
  EXPECT_EQ(buf.stats().prefetch_reads, 2u);
  // Hitting a prefetched page is free.
  EXPECT_TRUE(buf.Access(6, false).hit);
}

TEST(BufferManager, PrefetchRespectsMaxPage) {
  BufferManager buf(10, ReplacementPolicy::kLru);
  buf.SetPrefetcher(std::make_unique<SequentialPrefetcher>(3, 6));
  const AccessOutcome out = buf.Access(5, false);
  EXPECT_EQ(CountReads(out.ios), 2u);  // 5 and 6 only
}

TEST(BufferManager, PrefetchSkipsResidentPages) {
  BufferManager buf(10, ReplacementPolicy::kLru);
  buf.SetPrefetcher(std::make_unique<SequentialPrefetcher>(1, 100));
  buf.Access(6, false);
  const AccessOutcome out = buf.Access(5, false);
  EXPECT_EQ(CountReads(out.ios), 1u);  // 6 already resident
}

TEST(BufferManager, AccountingIdentityHolds) {
  BufferManager buf(8, ReplacementPolicy::kClock);
  desp::RandomStream rng(3);
  for (int i = 0; i < 5000; ++i) {
    buf.Access(static_cast<PageId>(rng.UniformInt(0, 40)), rng.Bernoulli(0.3));
  }
  const BufferStats& s = buf.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(buf.resident_pages(), buf.capacity());
  EXPECT_EQ(s.misses - buf.resident_pages(), s.evictions);
}

TEST(BufferManager, RejectsZeroCapacity) {
  EXPECT_THROW(BufferManager(0, ReplacementPolicy::kLru), util::Error);
}

/// Property sweep: cache effectiveness — a bigger buffer never yields
/// more misses on the same trace (inclusion-ish property; holds for LRU).
class BufferSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferSizes, LruMissesMonotoneInCapacity) {
  auto run = [](uint64_t capacity) {
    BufferManager buf(capacity, ReplacementPolicy::kLru);
    desp::RandomStream rng(17);
    for (int i = 0; i < 8000; ++i) {
      // Zipf-like reuse with locality.
      const PageId p = static_cast<PageId>(rng.Zipf(60, 0.8));
      buf.Access(p, false);
    }
    return buf.stats().misses;
  };
  const uint64_t capacity = GetParam();
  EXPECT_GE(run(capacity), run(capacity * 2));
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, BufferSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace voodb::storage
