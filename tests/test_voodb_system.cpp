/// \file test_voodb_system.cpp
/// \brief End-to-end tests of the wired VOODB evaluation model.
#include <gtest/gtest.h>

#include "cluster/dstc.hpp"
#include "util/check.hpp"
#include "voodb/system.hpp"

namespace voodb::core {
namespace {

ocb::OcbParameters SmallWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 400;
  p.max_refs_per_class = 3;
  p.base_instance_size = 60;
  p.seed = 61;
  return p;
}

VoodbConfig SmallConfig() {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 16;
  cfg.multiprogramming_level = 1;
  cfg.get_lock_ms = 0.1;
  cfg.release_lock_ms = 0.1;
  return cfg;
}

TEST(VoodbSystem, RunsRequestedTransactions) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbSystem sys(SmallConfig(), &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(2));
  const PhaseMetrics m = sys.RunTransactions(gen, 50);
  EXPECT_EQ(m.transactions, 50u);
  EXPECT_GT(m.object_accesses, 50u);
  EXPECT_GT(m.total_ios, 0u);
  EXPECT_GT(m.sim_time_ms, 0.0);
  EXPECT_GT(m.mean_response_ms, 0.0);
  EXPECT_EQ(m.buffer_requests, m.buffer_hits + m.reads);
}

TEST(VoodbSystem, PhasesAccumulateState) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbSystem sys(SmallConfig(), &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(2));
  const PhaseMetrics cold = sys.RunTransactions(gen, 30);
  const PhaseMetrics hot = sys.RunTransactions(gen, 30);
  // The warm buffer makes the second phase cheaper per transaction.
  EXPECT_LT(hot.HitRate() + 1.0, cold.HitRate() + 1.001 + 1.0);  // sanity
  EXPECT_EQ(hot.transactions, 30u);
  // Simulated time advances monotonically across phases.
  EXPECT_GT(hot.sim_time_ms, 0.0);
}

TEST(VoodbSystem, DeterministicInSeed) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto run = [&](uint64_t seed) {
    VoodbSystem sys(SmallConfig(), &base, nullptr, seed);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    const PhaseMetrics m = sys.RunTransactions(gen, 40);
    return std::make_pair(m.total_ios, m.sim_time_ms);
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(VoodbSystem, BiggerBufferNeverCostsMoreIos) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto ios_with_buffer = [&](uint64_t pages) {
    VoodbConfig cfg = SmallConfig();
    cfg.buffer_pages = pages;
    VoodbSystem sys(cfg, &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 100).total_ios;
  };
  EXPECT_GE(ios_with_buffer(4), ios_with_buffer(16));
  EXPECT_GE(ios_with_buffer(16), ios_with_buffer(64));
}

TEST(VoodbSystem, CentralizedMovesNoNetworkBytes) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = SmallConfig();
  cfg.system_class = SystemClass::kCentralized;
  VoodbSystem sys(cfg, &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  EXPECT_EQ(sys.RunTransactions(gen, 20).network_bytes, 0u);
}

TEST(VoodbSystem, PageServerShipsPages) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = SmallConfig();
  cfg.system_class = SystemClass::kPageServer;
  cfg.network_throughput_mbps = 1.0;
  VoodbSystem sys(cfg, &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  const PhaseMetrics m = sys.RunTransactions(gen, 20);
  // At least one page (1024 B) per object access plus request overhead.
  EXPECT_GT(m.network_bytes, m.object_accesses * 1024);
}

TEST(VoodbSystem, ObjectServerShipsLessThanPageServer) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto bytes_for = [&](SystemClass sc) {
    VoodbConfig cfg = SmallConfig();
    cfg.system_class = sc;
    cfg.network_throughput_mbps = 1.0;
    VoodbSystem sys(cfg, &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 30).network_bytes;
  };
  // Objects here are ~60-480 B while pages are 1 KB: shipping objects
  // moves fewer bytes than shipping pages.
  EXPECT_LT(bytes_for(SystemClass::kObjectServer),
            bytes_for(SystemClass::kPageServer));
  // A DB server ships only queries and results.
  EXPECT_LT(bytes_for(SystemClass::kDbServer),
            bytes_for(SystemClass::kPageServer));
}

TEST(VoodbSystem, NetworkThroughputBoundsResponseTime) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto mean_response = [&](double mbps) {
    VoodbConfig cfg = SmallConfig();
    cfg.system_class = SystemClass::kPageServer;
    cfg.network_throughput_mbps = mbps;
    VoodbSystem sys(cfg, &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 30).mean_response_ms;
  };
  EXPECT_GT(mean_response(0.1), mean_response(10.0));
}

TEST(VoodbSystem, MultipleUsersShareTheSystem) {
  ocb::OcbParameters wl = SmallWorkload();
  wl.think_time_ms = 1.0;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  VoodbConfig cfg = SmallConfig();
  cfg.num_users = 4;
  cfg.multiprogramming_level = 2;
  VoodbSystem sys(cfg, &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  const PhaseMetrics m = sys.RunTransactions(gen, 40);
  EXPECT_EQ(m.transactions, 40u);
  EXPECT_GT(sys.transaction_manager().SchedulerUtilization(), 0.0);
}

TEST(VoodbSystem, MultiprogrammingLevelLimitsConcurrency) {
  ocb::OcbParameters wl = SmallWorkload();
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  // 8 users but MULTILVL 1: admission serializes; throughput must not
  // exceed the single-stream case by much.
  VoodbConfig cfg = SmallConfig();
  cfg.num_users = 8;
  cfg.multiprogramming_level = 1;
  VoodbSystem sys(cfg, &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  const PhaseMetrics m = sys.RunTransactions(gen, 40);
  EXPECT_EQ(m.transactions, 40u);
  // Some transaction had to wait for admission.
  EXPECT_GT(sys.transaction_manager().response_times().max(),
            sys.transaction_manager().response_times().min());
}

TEST(VoodbSystem, LockTimeRaisesResponseTime) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto mean_response = [&](double lock_ms) {
    VoodbConfig cfg = SmallConfig();
    cfg.get_lock_ms = lock_ms;
    cfg.release_lock_ms = lock_ms;
    VoodbSystem sys(cfg, &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 30).mean_response_ms;
  };
  EXPECT_GT(mean_response(2.0), mean_response(0.0));
}

TEST(VoodbSystem, ForcedKindRunsOnlyThatKind) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbSystem sys(SmallConfig(), &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  const PhaseMetrics m = sys.RunTransactionsOfKind(
      gen, ocb::TransactionKind::kSimpleTraversal, 25);
  EXPECT_EQ(m.transactions, 25u);
  // Simple traversals have at most depth+1 accesses.
  EXPECT_LE(m.object_accesses, 25u * (SmallWorkload().simple_depth + 1));
}

TEST(VoodbSystem, ExternalClusteringTriggerReorganizes) {
  ocb::OcbParameters wl = SmallWorkload();
  wl.root_region = 4;  // hot roots so DSTC finds repeated traversals
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  VoodbSystem sys(SmallConfig(), &base,
                  std::make_unique<cluster::DstcPolicy>(), 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                            60);
  const ClusteringMetrics cm = sys.TriggerClustering();
  EXPECT_TRUE(cm.reorganized);
  EXPECT_GT(cm.num_clusters, 0u);
  EXPECT_GT(cm.overhead_ios, 0u);
}

TEST(VoodbSystem, AutoClusteringFiresAtTransactionBoundaries) {
  ocb::OcbParameters wl = SmallWorkload();
  wl.root_region = 4;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  VoodbConfig cfg = SmallConfig();
  cfg.auto_clustering = true;
  cluster::DstcParameters dp;
  dp.observation_period = 20;
  VoodbSystem sys(cfg, &base, std::make_unique<cluster::DstcPolicy>(dp), 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                            100);
  EXPECT_GE(sys.clustering_manager().reorganizations(), 1u);
}

TEST(VoodbSystem, ThinkTimeStretchesSimulatedTime) {
  ocb::OcbParameters with_think = SmallWorkload();
  with_think.think_time_ms = 50.0;
  const ocb::ObjectBase base_think = ocb::ObjectBase::Generate(with_think);
  const ocb::ObjectBase base_nothink =
      ocb::ObjectBase::Generate(SmallWorkload());
  auto sim_time = [&](const ocb::ObjectBase& base) {
    VoodbSystem sys(SmallConfig(), &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 20).sim_time_ms;
  };
  EXPECT_GT(sim_time(base_think), sim_time(base_nothink));
}

TEST(VoodbSystem, FlushOnCommitForcesDirtyPages) {
  ocb::OcbParameters wl = SmallWorkload();
  wl.p_update = 0.3;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  auto writes_with = [&](bool flush) {
    VoodbConfig cfg = SmallConfig();
    cfg.buffer_pages = 4096;  // everything fits: no eviction write-backs
    cfg.flush_on_commit = flush;
    VoodbSystem sys(cfg, &base, nullptr, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    return sys.RunTransactions(gen, 30).writes;
  };
  EXPECT_EQ(writes_with(false), 0u);
  EXPECT_GT(writes_with(true), 0u);
}

TEST(VoodbSystem, RejectsInvalidConfig) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = SmallConfig();
  cfg.buffer_pages = 0;
  EXPECT_THROW(VoodbSystem(cfg, &base, nullptr, 1), util::Error);
}

/// Property sweep: the system completes any workload mix under all four
/// architectures.
class SystemClasses : public ::testing::TestWithParam<SystemClass> {};

TEST_P(SystemClasses, CompletesWorkload) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = SmallConfig();
  cfg.system_class = GetParam();
  cfg.network_throughput_mbps = 2.0;
  VoodbSystem sys(cfg, &base, nullptr, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
  const PhaseMetrics m = sys.RunTransactions(gen, 30);
  EXPECT_EQ(m.transactions, 30u);
  EXPECT_GT(m.total_ios, 0u);
}

INSTANTIATE_TEST_SUITE_P(Architectures, SystemClasses,
                         ::testing::Values(SystemClass::kCentralized,
                                           SystemClass::kObjectServer,
                                           SystemClass::kPageServer,
                                           SystemClass::kDbServer));

}  // namespace
}  // namespace voodb::core
