/// \file test_event_queue.cpp
/// \brief EventQueue backends: ordering, and the scheduler property test
/// against a naive sorted-vector reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

const EventQueueKind kAllKinds[] = {EventQueueKind::kBinaryHeap,
                                    EventQueueKind::kQuaternaryHeap,
                                    EventQueueKind::kCalendar};

class EventQueueTest : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(EventQueueTest, NameRoundTrips) {
  auto queue = MakeEventQueue(GetParam());
  EXPECT_EQ(ParseEventQueueKind(queue->name()), GetParam());
}

TEST_P(EventQueueTest, DrainsInKeyOrderWithTies) {
  auto queue = MakeEventQueue(GetParam());
  RandomStream rng(17);
  std::vector<QueuedEvent> events;
  for (uint32_t i = 0; i < 2000; ++i) {
    EventKey key;
    key.time = static_cast<double>(rng.UniformInt(0, 50));  // many ties
    key.priority = static_cast<int>(rng.UniformInt(-2, 2));
    key.seq = i;
    events.push_back(QueuedEvent{key, i});
    queue->Push(events.back());
  }
  std::vector<QueuedEvent> expected = events;
  std::sort(expected.begin(), expected.end(),
            [](const QueuedEvent& a, const QueuedEvent& b) {
              return FiresBefore(a.key, b.key);
            });
  for (const QueuedEvent& want : expected) {
    ASSERT_FALSE(queue->Empty());
    const QueuedEvent min = queue->Min();
    const QueuedEvent got = queue->PopMin();
    EXPECT_EQ(min.slot, got.slot);
    EXPECT_EQ(got.slot, want.slot);
  }
  EXPECT_TRUE(queue->Empty());
}

TEST_P(EventQueueTest, InterleavedPushPopKeepsOrder) {
  auto queue = MakeEventQueue(GetParam());
  RandomStream rng(99);
  std::vector<QueuedEvent> reference;  // sorted ascending
  double now = 0.0;
  uint64_t seq = 0;
  uint32_t slot = 0;
  for (int op = 0; op < 5000; ++op) {
    if (queue->Empty() || rng.Bernoulli(0.6)) {
      EventKey key;
      // Never schedule into the past, like the scheduler guarantees.
      key.time = now + rng.Uniform(0.0, 20.0);
      key.priority = static_cast<int>(rng.UniformInt(-1, 1));
      key.seq = seq++;
      const QueuedEvent event{key, slot++};
      queue->Push(event);
      reference.insert(
          std::upper_bound(reference.begin(), reference.end(), event,
                           [](const QueuedEvent& a, const QueuedEvent& b) {
                             return FiresBefore(a.key, b.key);
                           }),
          event);
    } else {
      const QueuedEvent got = queue->PopMin();
      ASSERT_FALSE(reference.empty());
      EXPECT_EQ(got.slot, reference.front().slot);
      now = got.key.time;
      reference.erase(reference.begin());
    }
    EXPECT_EQ(queue->Size(), reference.size());
  }
}

TEST_P(EventQueueTest, ClearEmptiesAndStaysUsable) {
  auto queue = MakeEventQueue(GetParam());
  for (uint32_t i = 0; i < 100; ++i) {
    queue->Push(QueuedEvent{EventKey{static_cast<double>(i), 0, i}, i});
  }
  queue->Clear();
  EXPECT_TRUE(queue->Empty());
  queue->Push(QueuedEvent{EventKey{1.0, 0, 0}, 7});
  EXPECT_EQ(queue->PopMin().slot, 7u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EventQueueTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EventQueueKind>& info) {
      return std::string(ToString(info.param));
    });

// --- Randomized property test: Scheduler vs a naive reference model --------

/// The reference semantics of the scheduler: a sorted vector of live
/// events popped front-first.  Deliberately naive — no lazy deletion, no
/// arena, no buckets — so any disagreement implicates the real kernel.
class ReferenceModel {
 public:
  struct Event {
    EventKey key;
    uint64_t id;
  };

  void Schedule(double now, SimTime delay, int priority, uint64_t id) {
    Event event{EventKey{now + delay, priority, seq_++}, id};
    events_.insert(std::upper_bound(events_.begin(), events_.end(), event,
                                    [](const Event& a, const Event& b) {
                                      return FiresBefore(a.key, b.key);
                                    }),
                   event);
  }

  bool Cancel(uint64_t id) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->id == id) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Pops the next event id, or UINT64_MAX when drained.
  uint64_t Step(double* now) {
    if (events_.empty()) return UINT64_MAX;
    const Event event = events_.front();
    events_.erase(events_.begin());
    *now = event.key.time;
    return event.id;
  }

  size_t Pending() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  uint64_t seq_ = 0;
};

class SchedulerPropertyTest
    : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(SchedulerPropertyTest, MatchesReferenceModelUnderRandomOps) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Scheduler scheduler(GetParam());
    ReferenceModel reference;
    RandomStream rng(seed);
    std::vector<uint64_t> fired_real;
    std::vector<uint64_t> fired_reference;
    struct Live {
      EventHandle handle;
      uint64_t id;
    };
    std::vector<Live> live;
    uint64_t next_id = 0;

    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        // Schedule.
        const SimTime delay = rng.Bernoulli(0.2)
                                  ? 0.0  // same-instant events
                                  : rng.Uniform(0.0, 100.0);
        const int priority = static_cast<int>(rng.UniformInt(-2, 2));
        const uint64_t id = next_id++;
        EventHandle handle = scheduler.Schedule(
            delay, [id, &fired_real] { fired_real.push_back(id); }, priority);
        reference.Schedule(scheduler.Now(), delay, priority, id);
        live.push_back({std::move(handle), id});
      } else if (dice < 0.75 && !live.empty()) {
        // Cancel a random outstanding handle (it may have fired already).
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
        Live target = std::move(live[pick]);
        live.erase(live.begin() + pick);
        const bool was_pending = target.handle.pending();
        EXPECT_EQ(scheduler.Cancel(target.handle), was_pending);
        EXPECT_EQ(reference.Cancel(target.id), was_pending);
        EXPECT_FALSE(target.handle.pending());
      } else {
        // Step.
        double ref_now = scheduler.Now();
        const uint64_t ref_id = reference.Step(&ref_now);
        const bool stepped = scheduler.Step();
        ASSERT_EQ(stepped, ref_id != UINT64_MAX);
        if (stepped) {
          fired_reference.push_back(ref_id);
          ASSERT_EQ(fired_real.size(), fired_reference.size());
          EXPECT_EQ(fired_real.back(), fired_reference.back());
          EXPECT_DOUBLE_EQ(scheduler.Now(), ref_now);
        }
      }
      ASSERT_EQ(scheduler.PendingEvents(), reference.Pending());
    }

    // Drain both completely and compare the full firing order.
    for (;;) {
      double ref_now = 0.0;
      const uint64_t ref_id = reference.Step(&ref_now);
      const bool stepped = scheduler.Step();
      ASSERT_EQ(stepped, ref_id != UINT64_MAX);
      if (!stepped) break;
      fired_reference.push_back(ref_id);
    }
    EXPECT_EQ(fired_real, fired_reference) << "backend "
                                           << ToString(GetParam()) << " seed "
                                           << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SchedulerPropertyTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EventQueueKind>& info) {
      return std::string(ToString(info.param));
    });

// --- Intrusive-handle edge cases --------------------------------------------

TEST(SchedulerHandles, CancelOnFiredHandleIsSafeNoOp) {
  Scheduler s;
  EventHandle h = s.Schedule(1.0, [] {});
  s.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));
}

TEST(SchedulerHandles, CancelOnMovedFromHandleIsSafeNoOp) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.Schedule(1.0, [&] { ran = true; });
  EventHandle moved = std::move(h);
  EXPECT_FALSE(h.pending());  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(s.Cancel(h));  // moved-from: no-op, event stays armed
  EXPECT_TRUE(moved.pending());
  s.Run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(s.Cancel(moved));  // fired by now
}

TEST(SchedulerHandles, StaleHandleDoesNotCancelSlotReuse) {
  // After an event fires, its arena slot is recycled; a stale handle to
  // the fired event must not affect the new occupant.
  Scheduler s;
  EventHandle first = s.Schedule(1.0, [] {});
  s.Run();
  bool second_ran = false;
  EventHandle second = s.Schedule(1.0, [&] { second_ran = true; });
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(s.Cancel(first));  // generation mismatch: no-op
  EXPECT_TRUE(second.pending());
  s.Run();
  EXPECT_TRUE(second_ran);
}

TEST(SchedulerHandles, DefaultConstructedHandleIsInert) {
  Scheduler s;
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));
}

// --- Lazy-delete compaction --------------------------------------------------

TEST(SchedulerCompaction, CancelledEntriesNeverExceedHalfTheQueue) {
  for (EventQueueKind kind : kAllKinds) {
    Scheduler s(kind);
    std::vector<EventHandle> handles;
    handles.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      handles.push_back(
          s.Schedule(static_cast<double>((i * 17) % 101), [] {}));
    }
    // Cancel everything but one; without compaction the queue would keep
    // all 4096 entries until they surface.
    for (size_t i = 0; i + 1 < handles.size(); ++i) {
      EXPECT_TRUE(s.Cancel(handles[i]));
      EXPECT_LE(s.QueueEntries(), 2 * s.PendingEvents() + 1)
          << ToString(kind);
    }
    EXPECT_EQ(s.PendingEvents(), 1u);
    EXPECT_LE(s.QueueEntries(), 3u);
    int fired = 0;
    while (s.Step()) ++fired;
    EXPECT_EQ(fired, 1);
  }
}

TEST(SchedulerCompaction, CompactionPreservesFiringOrder) {
  for (EventQueueKind kind : kAllKinds) {
    Scheduler s(kind);
    RandomStream rng(5);
    std::vector<EventHandle> handles;
    std::vector<int> expected;
    std::vector<int> fired;
    for (int i = 0; i < 1000; ++i) {
      const double t = static_cast<double>(rng.UniformInt(0, 200));
      handles.push_back(s.Schedule(t, [i, &fired] { fired.push_back(i); }));
    }
    // Cancel two thirds (forces several compactions).
    for (int i = 0; i < 1000; ++i) {
      if (i % 3 != 0) {
        s.Cancel(handles[i]);
      }
    }
    for (int i = 0; i < 1000; i += 3) expected.push_back(i);
    s.Run();
    // Survivors fire in (time, seq) order; since seq order equals index
    // order here, a stable sort of indices by their times matches.
    std::vector<int> sorted = expected;
    // Recompute times deterministically with a fresh stream.
    RandomStream rng2(5);
    std::vector<double> times;
    for (int i = 0; i < 1000; ++i) {
      times.push_back(static_cast<double>(rng2.UniformInt(0, 200)));
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](int a, int b) { return times[a] < times[b]; });
    EXPECT_EQ(fired, sorted) << ToString(kind);
  }
}

}  // namespace
}  // namespace voodb::desp
