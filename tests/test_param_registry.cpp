/// \file test_param_registry.cpp
/// \brief Tests for the parameter registry: completeness over every
/// config field, set/get/ToString round-trips, range-violation
/// diagnostics, enum spellings, and the registry-backed sweep axes.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/grid.hpp"
#include "util/check.hpp"
#include "voodb/experiment.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::core {
namespace {

const ParamRegistry& Registry() { return ParamRegistry::Instance(); }

/// Expects `fn` to throw util::Error whose message mentions `needle`.
template <typename Fn>
void ExpectErrorMentions(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected util::Error mentioning '" << needle << "'";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message: " << e.what();
  }
}

// Field counts of the three parameter structs.  When one of these fails,
// a field was added or removed: update the descriptor table in
// param_registry.cpp (its sizeof static_asserts fire first on x86-64
// Linux) and then these counts.
constexpr size_t kSystemFields = 45;
constexpr size_t kDiskFields = 3;
constexpr size_t kWorkloadFields = 33;

TEST(ParamRegistry, EveryFieldHasExactlyOneDescriptor) {
  size_t system = 0, disk = 0, workload = 0;
  std::set<std::string> names;
  for (const ParamDescriptor& d : Registry().descriptors()) {
    EXPECT_TRUE(names.insert(d.name).second)
        << "duplicate descriptor '" << d.name << "'";
    switch (d.domain) {
      case ParamDomain::kSystem:
        ++system;
        break;
      case ParamDomain::kDisk:
        ++disk;
        break;
      case ParamDomain::kWorkload:
        ++workload;
        break;
    }
  }
  EXPECT_EQ(system, kSystemFields);
  EXPECT_EQ(disk, kDiskFields);
  EXPECT_EQ(workload, kWorkloadFields);
  EXPECT_EQ(Registry().descriptors().size(),
            kSystemFields + kDiskFields + kWorkloadFields);
}

TEST(ParamRegistry, DefaultsMatchDefaultConstructedConfigs) {
  VoodbConfig system;
  ocb::OcbParameters workload;
  const ConstParamTarget target{&system, &workload};
  for (const ParamDescriptor& d : Registry().descriptors()) {
    if (d.type == ParamType::kString) {
      EXPECT_EQ(d.text_getter(target), d.default_text) << d.name;
      continue;
    }
    EXPECT_EQ(d.getter(target), d.default_value) << d.name;
    EXPECT_TRUE(Registry().IsDefault(target, d)) << d.name;
  }
}

/// A valid value of `d` that differs from its default (when possible).
double PerturbedValue(const ParamDescriptor& d) {
  switch (d.type) {
    case ParamType::kBool:
      return d.default_value == 0.0 ? 1.0 : 0.0;
    case ParamType::kEnum: {
      const auto n = static_cast<double>(d.enum_values.size());
      return n > 1 ? (d.default_value + 1.0 >= n ? 0.0 : d.default_value + 1.0)
                   : d.default_value;
    }
    case ParamType::kInt:
      return d.default_value + 1.0 <= d.max_value ? d.default_value + 1.0
                                                  : d.min_value;
    case ParamType::kReal: {
      // min + 0.25 is exactly representable for the registry's bounds
      // (0 or 1), so the ToString -> Parse round-trip is bit-exact.
      const double candidate =
          d.min_value > -1e299 ? d.min_value + 0.25 : -2.5;
      const bool in_range = d.max_exclusive ? candidate < d.max_value
                                            : candidate <= d.max_value;
      return in_range ? candidate : d.min_value;
    }
    case ParamType::kString:
      break;  // string parameters have no numeric value (skipped above)
  }
  return d.default_value;
}

TEST(ParamRegistry, SetGetFormatParseRoundTripOverAllDescriptors) {
  VoodbConfig system;
  ocb::OcbParameters workload;
  const ParamTarget target{&system, &workload};
  const ConstParamTarget const_target{&system, &workload};
  for (const ParamDescriptor& d : Registry().descriptors()) {
    if (d.type == ParamType::kString) continue;  // covered below
    const double value = PerturbedValue(d);
    Registry().Set(target, d.name, value);
    EXPECT_EQ(Registry().Get(const_target, d.name), value) << d.name;
    // ToString -> Parse round-trip: the rendered form parses back to the
    // same numeric value (canonical enum name, true/false, number).
    const std::string text = Registry().FormatValue(d.name, value);
    EXPECT_EQ(Registry().ParseValue(d.name, text), value)
        << d.name << " via '" << text << "'";
    // And string-based Set accepts the rendered form too.
    Registry().Set(target, d.name, text);
    EXPECT_EQ(Registry().Get(const_target, d.name), value) << d.name;
  }
}

TEST(ParamRegistry, StringParametersTravelThroughTextAccessors) {
  VoodbConfig system;
  const ParamTarget target{&system, nullptr};
  const ConstParamTarget const_target{&system, nullptr};
  // The string-based Set writes the raw text; GetText reads it back.
  Registry().Set(target, "trace_path", std::string("runs/ocb.vtrc"));
  EXPECT_EQ(system.trace_path, "runs/ocb.vtrc");
  EXPECT_EQ(Registry().GetText(const_target, "trace_path"), "runs/ocb.vtrc");
  EXPECT_FALSE(Registry().IsDefault(const_target,
                                    Registry().At("trace_path")));
  // Numeric access paths reject string parameters — which is also what
  // keeps them out of sweep grids.
  ExpectErrorMentions([&] { Registry().Set(target, "trace_path", 1.0); },
                      "trace_path");
  ExpectErrorMentions([&] { Registry().Get(const_target, "trace_path"); },
                      "trace_path");
  ExpectErrorMentions([&] { Registry().FormatValue("trace_path", 0.0); },
                      "trace_path");
  ExpectErrorMentions([&] { Registry().ParseValue("trace_path", "x"); },
                      "trace_path");
  ExperimentConfig config;
  EXPECT_THROW(exp::ApplyAxis(config, "trace_path", 1.0), util::Error);
  // The numeric-typed trace knobs behave like every other parameter.
  Registry().Set(target, "trace_record", std::string("true"));
  EXPECT_TRUE(system.trace_record);
  Registry().Set(target, "workload_source", std::string("trace"));
  EXPECT_EQ(system.workload_source, WorkloadSourceKind::kTrace);
  // Cross-field validation: tracing without a path is rejected.
  system = VoodbConfig{};
  system.trace_record = true;
  ExpectErrorMentions([&] { system.Validate(); }, "trace_path");
  system = VoodbConfig{};
  system.workload_source = WorkloadSourceKind::kTrace;
  ExpectErrorMentions([&] { system.Validate(); }, "trace_path");
  // Recording while replaying shares the one trace_path field: the
  // writer would truncate the trace being read.
  system = VoodbConfig{};
  system.trace_record = true;
  system.workload_source = WorkloadSourceKind::kTrace;
  system.trace_path = "run.vtrc";
  ExpectErrorMentions([&] { system.Validate(); }, "trace_record");
}

TEST(ParamRegistry, EnumOrdinalsMatchEnumerators) {
  VoodbConfig system;
  ocb::OcbParameters workload;
  const ParamTarget target{&system, &workload};
  Registry().Set(target, "system_class", std::string("db_server"));
  EXPECT_EQ(system.system_class, SystemClass::kDbServer);
  Registry().Set(target, "system_class", std::string("PAGE_SERVER"));
  EXPECT_EQ(system.system_class, SystemClass::kPageServer);
  Registry().Set(target, "page_replacement", std::string("gclock"));
  EXPECT_EQ(system.page_replacement, storage::ReplacementPolicy::kGclock);
  Registry().Set(target, "initial_placement", std::string("reference_dfs"));
  EXPECT_EQ(system.initial_placement, storage::PlacementPolicy::kReferenceDfs);
  Registry().Set(target, "prefetch", std::string("sequential"));
  EXPECT_EQ(system.prefetch, PrefetchPolicy::kSequential);
  Registry().Set(target, "reference_distribution", std::string("zipf"));
  EXPECT_EQ(workload.reference_distribution, ocb::Distribution::kZipf);
}

TEST(ParamRegistry, EventQueueAcceptsNamesAliasesAndNumerics) {
  VoodbConfig system;
  const ParamTarget target{&system, nullptr};
  for (const auto& [spelling, kind] :
       {std::pair<const char*, desp::EventQueueKind>{
            "binary_heap", desp::EventQueueKind::kBinaryHeap},
        {"binary", desp::EventQueueKind::kBinaryHeap},
        {"quaternary_heap", desp::EventQueueKind::kQuaternaryHeap},
        {"4ary", desp::EventQueueKind::kQuaternaryHeap},
        {"calendar_queue", desp::EventQueueKind::kCalendar},
        {"calendar", desp::EventQueueKind::kCalendar},
        {"0", desp::EventQueueKind::kBinaryHeap},
        {"1", desp::EventQueueKind::kQuaternaryHeap},
        {"2", desp::EventQueueKind::kCalendar}}) {
    Registry().Set(target, "event_queue", std::string(spelling));
    EXPECT_EQ(system.event_queue, kind) << spelling;
  }
  // Error lists the valid choices.
  ExpectErrorMentions(
      [&] { Registry().Set(target, "event_queue", std::string("bogus")); },
      "binary_heap | quaternary_heap | calendar_queue");
  // desp's own parser accepts the same spellings (used by --event-queue).
  EXPECT_EQ(desp::ParseEventQueueKind("calendar_queue"),
            desp::EventQueueKind::kCalendar);
  EXPECT_EQ(desp::ParseEventQueueKind("1"),
            desp::EventQueueKind::kQuaternaryHeap);
  ExpectErrorMentions([] { desp::ParseEventQueueKind("nope"); },
                      "binary_heap | quaternary_heap | calendar_queue");
}

TEST(ParamRegistry, CcProtocolEnumRoundTripsAndSuggestsNearestSpelling) {
  VoodbConfig system;
  ocb::OcbParameters workload;
  const ParamTarget target{&system, &workload};
  for (const auto& [spelling, kind] :
       std::initializer_list<std::pair<const char*, cc::ProtocolKind>>{
           {"no_wait", cc::ProtocolKind::kNoWait},
           {"nowait", cc::ProtocolKind::kNoWait},
           {"wait_die", cc::ProtocolKind::kWaitDie},
           {"waitdie", cc::ProtocolKind::kWaitDie},
           {"deadlock_detect", cc::ProtocolKind::kDeadlockDetect},
           {"detect", cc::ProtocolKind::kDeadlockDetect},
           {"mvcc", cc::ProtocolKind::kMvcc},
           {"occ", cc::ProtocolKind::kOcc}}) {
    Registry().Set(target, "cc_protocol", std::string(spelling));
    EXPECT_EQ(system.cc_protocol, kind) << spelling;
  }
  // A misspelled enum value is rejected with a did-you-mean suggestion
  // computed over every accepted spelling.
  ExpectErrorMentions(
      [&] { Registry().Set(target, "cc_protocol", std::string("walt_die")); },
      "did you mean 'wait_die'?");
  ExpectErrorMentions(
      [&] { Registry().Set(target, "cc_protocol", std::string("mvc")); },
      "did you mean 'mvcc'?");
}

TEST(ParamRegistry, RangeViolationsNameTheParameter) {
  VoodbConfig system;
  ocb::OcbParameters workload;
  const ParamTarget target{&system, &workload};
  ExpectErrorMentions([&] { Registry().Set(target, "page_size", 100.0); },
                      "page_size");
  ExpectErrorMentions([&] { Registry().Set(target, "buffer_pages", 0.0); },
                      "buffer_pages");
  ExpectErrorMentions([&] { Registry().Set(target, "buffer_pages", 0.5); },
                      "buffer_pages");
  ExpectErrorMentions(
      [&] { Registry().Set(target, "disk_fault_prob", 1.0); },
      "disk_fault_prob");
  ExpectErrorMentions([&] { Registry().Set(target, "p_update", 1.5); },
                      "p_update");
  ExpectErrorMentions([&] { Registry().Set(target, "system_class", 4.0); },
                      "system_class");
  // Values exceeding the field width are rejected, never wrapped
  // (page_size is uint32_t; 5e9 would truncate to ~7e8 if cast).
  ExpectErrorMentions([&] { Registry().Set(target, "page_size", 5e9); },
                      "page_size");
  EXPECT_EQ(system.page_size, VoodbConfig{}.page_size);
  ExpectErrorMentions([&] { Registry().Set(target, "num_users", 1e12); },
                      "num_users");
  // 64-bit fields cap at 2^53 (the last exactly-representable integer).
  ExpectErrorMentions([&] { Registry().Set(target, "num_objects", 1e18); },
                      "num_objects");
}

TEST(ParamRegistry, PrefetchDepthZeroLegalOnlyWhileDisabled) {
  VoodbConfig cfg;
  cfg.prefetch_depth = 0;  // prefetch defaults to none
  cfg.Validate();
  cfg.prefetch = PrefetchPolicy::kSequential;
  ExpectErrorMentions([&] { cfg.Validate(); }, "prefetch_depth");
}

TEST(ParamRegistry, ValidateNamesTheOffendingParameter) {
  VoodbConfig cfg;
  cfg.page_size = 100;
  ExpectErrorMentions([&] { cfg.Validate(); }, "page_size");
  cfg = VoodbConfig{};
  cfg.storage_overhead = 0.5;
  ExpectErrorMentions([&] { cfg.Validate(); }, "storage_overhead");
  cfg = VoodbConfig{};
  cfg.disk.latency_ms = -1.0;
  ExpectErrorMentions([&] { cfg.Validate(); }, "disk_latency_ms");
  ocb::OcbParameters wl;
  wl.set_depth = 0;
  ExpectErrorMentions([&] { wl.Validate(); }, "set_depth");
}

TEST(ParamRegistry, UnknownNameSuggestsNearest) {
  ExpectErrorMentions([] { Registry().At("buffer_page"); }, "buffer_pages");
  ExpectErrorMentions([] { Registry().At("num_object"); }, "num_objects");
}

TEST(ParamRegistry, MissingDomainTargetIsReported) {
  VoodbConfig system;
  const ParamTarget system_only{&system, nullptr};
  ExpectErrorMentions(
      [&] { Registry().Set(system_only, "num_objects", 100.0); },
      "num_objects");
}

TEST(ApplyAxisRegistry, EveryParameterIsASweepAxis) {
  ExperimentConfig config;
  // Previously-unsweepable boolean and enum knobs now bind as axes.
  exp::ApplyAxis(config, "use_lock_manager", 1);
  EXPECT_TRUE(config.system.use_lock_manager);
  exp::ApplyAxis(config, "flush_on_commit", 1);
  EXPECT_TRUE(config.system.flush_on_commit);
  exp::ApplyAxis(config, "use_virtual_memory", 1);
  EXPECT_TRUE(config.system.use_virtual_memory);
  exp::ApplyAxis(config, "system_class", 0);
  EXPECT_EQ(config.system.system_class, SystemClass::kCentralized);
  exp::ApplyAxis(config, "page_replacement", 6);
  EXPECT_EQ(config.system.page_replacement,
            storage::ReplacementPolicy::kGclock);
  exp::ApplyAxis(config, "disk_search_ms", 6.3);
  EXPECT_DOUBLE_EQ(config.system.disk.search_ms, 6.3);
  exp::ApplyAxis(config, "p_update", 0.25);
  EXPECT_DOUBLE_EQ(config.workload.p_update, 0.25);
  // Domain classification drives object-base regeneration in sweeps.
  EXPECT_TRUE(exp::IsWorkloadAxis("p_update"));
  EXPECT_TRUE(exp::IsWorkloadAxis("seed"));
  EXPECT_FALSE(exp::IsWorkloadAxis("disk_search_ms"));
  EXPECT_FALSE(exp::IsWorkloadAxis("use_lock_manager"));
  EXPECT_THROW(exp::IsWorkloadAxis("no_such_axis"), util::Error);
}

}  // namespace
}  // namespace voodb::core
