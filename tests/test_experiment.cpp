/// \file test_experiment.cpp
/// \brief Tests for the replicated experiment runner.
#include <gtest/gtest.h>

#include "cluster/dstc.hpp"
#include "util/check.hpp"
#include "voodb/experiment.hpp"

namespace voodb::core {
namespace {

ExperimentConfig SmallExperiment() {
  ExperimentConfig ec;
  ec.system.system_class = SystemClass::kCentralized;
  ec.system.page_size = 1024;
  ec.system.buffer_pages = 16;
  ec.system.multiprogramming_level = 1;
  ec.workload.num_classes = 8;
  ec.workload.num_objects = 300;
  ec.workload.max_refs_per_class = 3;
  ec.workload.base_instance_size = 60;
  ec.workload.hot_transactions = 40;
  ec.workload.cold_transactions = 10;
  ec.workload.seed = 71;
  ec.replications = 5;
  return ec;
}

TEST(Experiment, RunsAllReplicationsAndMetrics) {
  const desp::ReplicationResult result = Experiment::Run(SmallExperiment());
  EXPECT_EQ(result.replications(), 5u);
  for (const char* metric :
       {"total_ios", "reads", "writes", "hit_rate", "mean_response_ms",
        "throughput_tps", "sim_time_ms", "object_accesses"}) {
    EXPECT_TRUE(result.HasMetric(metric)) << metric;
    EXPECT_EQ(result.Metric(metric).count(), 5u) << metric;
  }
  EXPECT_GT(result.Metric("total_ios").mean(), 0.0);
  EXPECT_GT(result.Metric("hit_rate").mean(), 0.0);
  EXPECT_LE(result.Metric("hit_rate").max(), 1.0);
}

TEST(Experiment, DeterministicInBaseSeed) {
  const double a = Experiment::MeanTotalIos(SmallExperiment());
  const double b = Experiment::MeanTotalIos(SmallExperiment());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Experiment, DifferentBaseSeedsVary) {
  ExperimentConfig ec = SmallExperiment();
  const double a = Experiment::MeanTotalIos(ec);
  ec.base_seed = ec.base_seed + 1;
  const double b = Experiment::MeanTotalIos(ec);
  EXPECT_NE(a, b);
}

TEST(Experiment, ReplicationsActuallyVary) {
  // With nontrivial workload randomness, per-replication totals differ,
  // so the CI has positive width.
  const desp::ReplicationResult result = Experiment::Run(SmallExperiment());
  EXPECT_GT(result.Metric("total_ios").stddev(), 0.0);
  const desp::ConfidenceInterval ci = result.Interval("total_ios");
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.Contains(result.Metric("total_ios").mean()));
}

TEST(Experiment, RunOnBaseMatchesRun) {
  const ExperimentConfig ec = SmallExperiment();
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  const double via_run = Experiment::Run(ec).Metric("total_ios").mean();
  const double via_base =
      Experiment::RunOnBase(ec, base).Metric("total_ios").mean();
  EXPECT_DOUBLE_EQ(via_run, via_base);
}

TEST(Experiment, ColdRunWarmsTheBuffer) {
  ExperimentConfig cold = SmallExperiment();
  cold.system.buffer_pages = 256;  // everything fits
  ExperimentConfig no_cold = cold;
  no_cold.workload.cold_transactions = 0;
  // With a cold run first, the measured hot phase starts warm and pays
  // fewer I/Os.
  EXPECT_LT(Experiment::MeanTotalIos(cold),
            Experiment::MeanTotalIos(no_cold));
}

TEST(Experiment, ClusteringFactoryIsUsed) {
  ExperimentConfig ec = SmallExperiment();
  ec.workload.root_region = 4;
  ec.workload.p_set = 0.0;
  ec.workload.p_simple = 0.0;
  ec.workload.p_hierarchy = 1.0;
  ec.workload.p_stochastic = 0.0;
  ec.system.auto_clustering = true;
  ec.system.clustering_stat_cpu_ms = 0.01;
  int created = 0;
  ec.make_policy = [&created]() -> std::unique_ptr<cluster::ClusteringPolicy> {
    ++created;
    cluster::DstcParameters dp;
    dp.observation_period = 10;
    return std::make_unique<cluster::DstcPolicy>(dp);
  };
  Experiment::Run(ec);
  EXPECT_EQ(created, 5);  // one policy per replication
}

TEST(Experiment, RejectsZeroReplications) {
  ExperimentConfig ec = SmallExperiment();
  ec.replications = 0;
  EXPECT_THROW(Experiment::Run(ec), util::Error);
}

}  // namespace
}  // namespace voodb::core
