/// \file test_parallel_scheduler.cpp
/// \brief Conservative parallel kernel: window semantics, mailbox
/// determinism, and the bit-identity contract at every thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "desp/parallel_scheduler.hpp"
#include "desp/random.hpp"
#include "exp/executor.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

// --- RunWindow (the per-partition primitive) -------------------------------

class RunWindowTest : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(RunWindowTest, ExecutesStrictlyBelowEndAndLeavesClockAlone) {
  Scheduler s(GetParam());
  std::vector<int> fired;
  s.Schedule(1.0, [&] { fired.push_back(1); });
  s.Schedule(2.0, [&] { fired.push_back(2); });
  s.Schedule(3.0, [&] { fired.push_back(3); });
  EXPECT_EQ(s.RunWindow(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  // Unlike RunUntil, the clock stays at the last executed event so the
  // next window's timestamps are unperturbed.
  EXPECT_DOUBLE_EQ(s.Now(), 2.0);
  EXPECT_EQ(s.PendingEvents(), 1u);
}

TEST_P(RunWindowTest, EventExactlyAtEndBelongsToTheNextWindow) {
  Scheduler s(GetParam());
  int fired = 0;
  s.Schedule(2.0, [&] { ++fired; });
  EXPECT_EQ(s.RunWindow(2.0), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.RunWindow(2.0 + 1e-9), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_P(RunWindowTest, EventsScheduledInsideTheWindowStillRun) {
  Scheduler s(GetParam());
  std::vector<double> times;
  s.Schedule(1.0, [&] {
    times.push_back(s.Now());
    s.Schedule(0.5, [&] { times.push_back(s.Now()); });  // t=1.5 < end
    s.Schedule(2.0, [&] { times.push_back(s.Now()); });  // t=3.0 >= end
  });
  EXPECT_EQ(s.RunWindow(2.0), 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5}));
  EXPECT_EQ(s.PendingEvents(), 1u);
}

TEST_P(RunWindowTest, NextEventTimeSkipsCancelledEntries) {
  Scheduler s(GetParam());
  EventHandle doomed = s.Schedule(1.0, [] {});
  s.Schedule(2.0, [] {});
  s.Cancel(doomed);
  ASSERT_TRUE(s.HasNextEvent());
  EXPECT_DOUBLE_EQ(s.NextEventTime(), 2.0);
  Scheduler empty(GetParam());
  EXPECT_FALSE(empty.HasNextEvent());
}

INSTANTIATE_TEST_SUITE_P(AllQueues, RunWindowTest,
                         ::testing::Values(EventQueueKind::kBinaryHeap,
                                           EventQueueKind::kQuaternaryHeap,
                                           EventQueueKind::kCalendar));

// --- ParallelScheduler ------------------------------------------------------

TEST(ParallelScheduler, IndependentPartitionsDrainInOneWindow) {
  ParallelScheduler::Options options;
  options.partitions = 3;
  ParallelScheduler ps(options);
  std::vector<int> fired(3, 0);
  for (size_t p = 0; p < 3; ++p) {
    for (int i = 1; i <= 4; ++i) {
      ps.partition(p).Schedule(i * 1.0, [&fired, p] { ++fired[p]; });
    }
  }
  // No edges registered: lookahead is infinite and everything runs in a
  // single window.
  EXPECT_EQ(ps.Run(), 12u);
  EXPECT_EQ(ps.Windows(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{4, 4, 4}));
  EXPECT_DOUBLE_EQ(ps.MaxNow(), 4.0);
}

TEST(ParallelScheduler, WindowDerivesFromMinimumEdgeDelay) {
  ParallelScheduler::Options options;
  options.partitions = 2;
  ParallelScheduler ps(options);
  ps.SetEdgeDelay(0, 1, 5.0);
  ps.SetEdgeDelay(1, 0, 3.0);
  EXPECT_DOUBLE_EQ(ps.Lookahead(), 3.0);
  EXPECT_DOUBLE_EQ(ps.Window(), 3.0);
}

TEST(ParallelScheduler, ExplicitWindowMustStayConservative) {
  ParallelScheduler::Options options;
  options.partitions = 2;
  options.window = 10.0;
  ParallelScheduler ps(options);
  ps.SetUniformEdgeDelay(3.0);
  EXPECT_THROW(ps.Window(), util::Error);
  ParallelScheduler::Options ok = options;
  ok.window = 2.0;
  ParallelScheduler ps2(ok);
  ps2.SetUniformEdgeDelay(3.0);
  EXPECT_DOUBLE_EQ(ps2.Window(), 2.0);
}

TEST(ParallelScheduler, SendToValidatesEdgeAndDelay) {
  ParallelScheduler::Options options;
  options.partitions = 2;
  ParallelScheduler ps(options);
  EXPECT_THROW(ps.SendTo(0, 1, 1.0, [] {}), util::Error);  // unregistered
  ps.SetEdgeDelay(0, 1, 2.0);
  EXPECT_THROW(ps.SendTo(0, 1, 1.0, [] {}), util::Error);  // below lookahead
  EXPECT_THROW(ps.SetEdgeDelay(0, 1, 0.0), util::Error);   // zero lookahead
  ps.SendTo(0, 1, 2.0, [] {});  // exactly the edge delay is legal
}

TEST(ParallelScheduler, CrossPartitionDeliveryHonorsTimePriorityAndSource) {
  ParallelScheduler::Options options;
  options.partitions = 3;
  ParallelScheduler ps(options);
  ps.SetUniformEdgeDelay(1.0);
  std::vector<std::string> order;
  // Both sources mail partition 2 at the same delivery time; priority
  // breaks the first tie, source index the second.
  ps.partition(2).Schedule(0.5, [&] { order.push_back("local"); });
  ps.SendTo(0, 2, 4.0, [&] { order.push_back("from0-low"); }, 0);
  ps.SendTo(1, 2, 4.0, [&] { order.push_back("from1-high"); }, 5);
  ps.SendTo(1, 2, 4.0, [&] { order.push_back("from1-low"); }, 0);
  ps.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"local", "from1-high",
                                             "from0-low", "from1-low"}));
  EXPECT_EQ(ps.CrossEvents(), 3u);
}

// --- Bit-identity: serial vs pooled execution ------------------------------

struct KeyTrace {
  std::vector<EventKey> keys;
  static void Record(void* ctx, const EventKey& key) {
    static_cast<KeyTrace*>(ctx)->keys.push_back(key);
  }
};

bool SameKeys(const std::vector<EventKey>& a, const std::vector<EventKey>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].time, &b[i].time, sizeof(SimTime)) != 0 ||
        a[i].priority != b[i].priority || a[i].seq != b[i].seq) {
      return false;
    }
  }
  return true;
}

/// A ring workload: every partition runs self-rescheduling chains with
/// pseudo-random delays; every few hops it mails the next partition,
/// which replies.  Exercises windows, mailboxes, and seq assignment.
class RingWorkload {
 public:
  RingWorkload(ParallelScheduler* ps, double lookahead)
      : ps_(ps), lookahead_(lookahead) {
    const size_t n = ps->partitions();
    rngs_.reserve(n);
    for (size_t p = 0; p < n; ++p) rngs_.emplace_back(RandomStream(99).Derive(p));
    counts_.assign(n, 0);
    for (size_t p = 0; p < n; ++p) Chain(p, 40);
  }

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  void Chain(size_t p, int remaining) {
    if (remaining == 0) return;
    const double delay = rngs_[p].Uniform(0.3, 2.0);
    ps_->partition(p).Schedule(delay, [this, p, remaining] {
      ++counts_[p];
      if (remaining % 4 == 0) {
        const size_t to = (p + 1) % ps_->partitions();
        ps_->SendTo(p, to, lookahead_ + 0.25, [this, to] { ++counts_[to]; });
      }
      Chain(p, remaining - 1);
    });
  }

  ParallelScheduler* ps_;
  double lookahead_;
  std::vector<RandomStream> rngs_;
  std::vector<uint64_t> counts_;
};

struct RingRun {
  std::vector<std::vector<EventKey>> traces;
  std::vector<double> clocks;
  std::vector<uint64_t> counts;
  uint64_t executed = 0;
  uint64_t windows = 0;
  uint64_t cross = 0;
};

RingRun RunRing(size_t partitions, size_t threads, EventQueueKind kind) {
  ParallelScheduler::Options options;
  options.partitions = partitions;
  options.queue = kind;
  ParallelScheduler ps(options);
  const double lookahead = 1.5;
  ps.SetUniformEdgeDelay(lookahead);
  std::vector<KeyTrace> traces(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    ps.partition(p).SetTraceHook(&KeyTrace::Record, &traces[p]);
  }
  RingWorkload workload(&ps, lookahead);
  RingRun run;
  if (threads <= 1) {
    run.executed = ps.Run(nullptr);
  } else {
    exp::ExecutorOptions eo;
    eo.threads = threads;
    exp::ThreadPool pool(eo);
    run.executed = ps.Run(&pool);
  }
  for (size_t p = 0; p < partitions; ++p) {
    run.traces.push_back(std::move(traces[p].keys));
    run.clocks.push_back(ps.partition(p).Now());
  }
  run.counts = workload.counts();
  run.windows = ps.Windows();
  run.cross = ps.CrossEvents();
  return run;
}

class ParallelIdentityTest : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(ParallelIdentityTest, PooledRunsAreBitIdenticalToSerial) {
  const size_t partitions = 4;
  const RingRun serial = RunRing(partitions, 1, GetParam());
  ASSERT_GT(serial.executed, 160u);  // chains + cross deliveries all ran
  ASSERT_GT(serial.cross, 0u);
  ASSERT_GT(serial.windows, 1u);  // the window protocol actually engaged
  for (const size_t threads : {2u, 4u, 8u}) {
    const RingRun pooled = RunRing(partitions, threads, GetParam());
    EXPECT_EQ(pooled.executed, serial.executed) << threads << " threads";
    EXPECT_EQ(pooled.windows, serial.windows) << threads << " threads";
    EXPECT_EQ(pooled.cross, serial.cross) << threads << " threads";
    EXPECT_EQ(pooled.counts, serial.counts) << threads << " threads";
    for (size_t p = 0; p < partitions; ++p) {
      EXPECT_TRUE(SameKeys(pooled.traces[p], serial.traces[p]))
          << "partition " << p << " diverged at " << threads << " threads";
      EXPECT_EQ(std::memcmp(&pooled.clocks[p], &serial.clocks[p],
                            sizeof(double)),
                0)
          << "partition " << p << " clock diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueues, ParallelIdentityTest,
                         ::testing::Values(EventQueueKind::kBinaryHeap,
                                           EventQueueKind::kQuaternaryHeap,
                                           EventQueueKind::kCalendar));

}  // namespace
}  // namespace voodb::desp
