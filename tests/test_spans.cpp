/// \file test_spans.cpp
/// \brief Causal span tracing: tree construction, critical-path folding,
/// the Sum()==response contract, sampling determinism, observe-neutrality,
/// and cross-shard exemplar stitching.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cc/protocol.hpp"
#include "desp/scheduler.hpp"
#include "exp/executor.hpp"
#include "obs/spans.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "voodb/sharded.hpp"
#include "voodb/system.hpp"

namespace voodb {
namespace {

using obs::AbortCause;
using obs::Exemplar;
using obs::ExemplarSpan;
using obs::SpanKind;
using obs::SpanTracer;

SpanTracer::Options AllOptions(uint32_t exemplars = 8) {
  SpanTracer::Options opts;
  opts.sample_rate = 1.0;
  opts.exemplars = exemplars;
  return opts;
}

/// Every span interval must lie inside its parent's (preorder + depth
/// encode the tree), and no span may end before it begins.
void ExpectNested(const Exemplar& e) {
  std::vector<const ExemplarSpan*> stack;
  for (const ExemplarSpan& s : e.spans) {
    EXPECT_LE(s.begin_ms, s.end_ms);
    while (stack.size() > s.depth) stack.pop_back();
    if (!stack.empty()) {
      const ExemplarSpan* parent = stack.back();
      EXPECT_GE(s.begin_ms, parent->begin_ms);
      EXPECT_LE(s.end_ms, parent->end_ms);
    }
    stack.push_back(&s);
  }
}

// --- SpanTracer unit behavior ----------------------------------------------

TEST(SpanTracer, BuildsTreeAndFoldsCriticalPathExactly) {
  desp::Scheduler sched;
  SpanTracer tracer(&sched, AllOptions());
  const uint32_t t = tracer.BeginTrace(1, 0.0);
  ASSERT_NE(t, 0u);
  tracer.Open(t, SpanKind::kAttempt, 1, 0.0);
  tracer.Leaf(t, SpanKind::kCpu, 0, 0.0, 1.5);
  tracer.Leaf(t, SpanKind::kCcWait, 7, 1.5, 3.0);
  tracer.Open(t, SpanKind::kBuffer, 7, 3.0);
  tracer.Leaf(t, SpanKind::kIo, 2, 3.0, 8.0);
  tracer.Close(t, 8.0);  // buffer (fully covered by the disk IO)
  tracer.Close(t, 9.0);  // attempt
  tracer.FinishCommitted(t, 9.0, 9.0);

  ASSERT_EQ(tracer.exemplars().size(), 1u);
  const Exemplar& e = tracer.exemplars().front();
  EXPECT_DOUBLE_EQ(e.path.cpu_ms, 1.5);
  EXPECT_DOUBLE_EQ(e.path.lock_wait_ms, 1.5);
  EXPECT_DOUBLE_EQ(e.path.io_ms, 5.0);
  EXPECT_DOUBLE_EQ(e.path.net_ms, 0.0);
  EXPECT_DOUBLE_EQ(e.path.retry_ms, 0.0);
  // The exactness contract, compared as bits.
  const double sum = e.path.Sum();
  EXPECT_EQ(std::memcmp(&sum, &e.response_ms, sizeof(double)), 0);
  // root + attempt + cpu + cc_wait + buffer + io, preorder.
  ASSERT_EQ(e.spans.size(), 6u);
  EXPECT_EQ(e.spans[0].kind, SpanKind::kTxn);
  EXPECT_EQ(e.spans[1].kind, SpanKind::kAttempt);
  ExpectNested(e);
}

TEST(SpanTracer, AbortedAttemptsAndBackoffsFoldIntoRetry) {
  desp::Scheduler sched;
  SpanTracer tracer(&sched, AllOptions());
  const uint32_t t = tracer.BeginTrace(3, 0.0);
  ASSERT_NE(t, 0u);
  tracer.Open(t, SpanKind::kAttempt, 1, 0.0);
  tracer.Leaf(t, SpanKind::kCpu, 0, 0.0, 2.0);
  tracer.NoteAbort(t, AbortCause::kNoWait);
  tracer.Close(t, 2.0);  // aborted attempt
  tracer.Leaf(t, SpanKind::kBackoff, 1, 2.0, 5.0);
  tracer.Open(t, SpanKind::kAttempt, 2, 5.0);
  tracer.Leaf(t, SpanKind::kCpu, 0, 5.0, 6.0);
  tracer.Close(t, 9.0);
  tracer.FinishCommitted(t, 9.0, 9.0);

  ASSERT_EQ(tracer.exemplars().size(), 1u);
  const Exemplar& e = tracer.exemplars().front();
  // The whole first attempt (2.0) plus the backoff (3.0) is redo work.
  EXPECT_DOUBLE_EQ(e.path.retry_ms, 5.0);
  EXPECT_DOUBLE_EQ(e.path.cpu_ms, 1.0);
  const double sum = e.path.Sum();
  EXPECT_EQ(std::memcmp(&sum, &e.response_ms, sizeof(double)), 0);
  bool saw_cause = false;
  for (const ExemplarSpan& s : e.spans) {
    if (s.kind == SpanKind::kAttempt && s.label == 1) {
      EXPECT_EQ(s.abort_cause, AbortCause::kNoWait);
      saw_cause = true;
    }
  }
  EXPECT_TRUE(saw_cause);
}

TEST(SpanTracer, FinishedTracesIgnoreLateWrites) {
  desp::Scheduler sched;
  SpanTracer tracer(&sched, AllOptions());
  const uint32_t t = tracer.BeginTrace(1, 0.0);
  tracer.Open(t, SpanKind::kAttempt, 1, 0.0);
  tracer.Close(t, 1.0);
  tracer.FinishCommitted(t, 1.0, 1.0);
  // The slot is recycled; writes against the stale ctx (old generation)
  // must be dropped, not attributed to whoever reuses the slot.
  tracer.Leaf(t, SpanKind::kIo, 0, 1.0, 2.0);
  tracer.NoteAbort(t, AbortCause::kDeadlock);
  const uint32_t t2 = tracer.BeginTrace(2, 2.0);
  ASSERT_NE(t2, t);  // generation bumps the ctx id on slot reuse
  tracer.Open(t2, SpanKind::kAttempt, 1, 2.0);
  tracer.Close(t2, 3.0);
  tracer.FinishCommitted(t2, 1.0, 3.0);
  EXPECT_EQ(tracer.traces_finished(), 2u);
  // Neither late write leaked into the second trace's tree.
  for (const Exemplar& e : tracer.exemplars()) {
    for (const ExemplarSpan& s : e.spans) {
      EXPECT_NE(s.kind, SpanKind::kIo);
      EXPECT_EQ(s.abort_cause, AbortCause::kNone);
    }
  }
}

TEST(SpanTracer, SamplingIsDeterministicAndRateShaped) {
  EXPECT_TRUE(SpanTracer::Sampled(7, 123, 1.0));
  EXPECT_FALSE(SpanTracer::Sampled(7, 123, 0.0));
  uint64_t sampled = 0;
  for (uint64_t id = 0; id < 4000; ++id) {
    const bool first = SpanTracer::Sampled(99, id, 0.5);
    EXPECT_EQ(first, SpanTracer::Sampled(99, id, 0.5));  // stable
    if (first) ++sampled;
  }
  EXPECT_GT(sampled, 1600u);
  EXPECT_LT(sampled, 2400u);
}

// --- End-to-end through the VOODB model ------------------------------------

ocb::OcbParameters ContendedWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 300;
  p.p_set = 0.0;
  p.p_simple = 0.0;
  p.p_hierarchy = 0.0;
  p.p_stochastic = 0.0;
  p.p_random_access = 1.0;
  p.random_access_count = 6;
  p.p_update = 0.5;
  p.seed = 17;
  return p;
}

core::VoodbConfig TracedConfig() {
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 64;
  cfg.num_users = 8;
  cfg.multiprogramming_level = 8;
  cfg.use_lock_manager = true;
  cfg.cc_protocol = cc::ProtocolKind::kNoWait;
  cfg.get_lock_ms = 0.2;
  cfg.release_lock_ms = 0.2;
  cfg.trace_spans = true;
  cfg.trace_sample_rate = 1.0;
  cfg.trace_exemplars = 64;  // >= transactions: every tree retained
  return cfg;
}

TEST(SpanTracing, EverySpanClosesAndComponentsSumExactly) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::VoodbSystem sys(TracedConfig(), &base, nullptr, /*seed=*/5);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5).Derive(1));
  const core::PhaseMetrics m = sys.RunTransactions(gen, 60);
  ASSERT_EQ(m.transactions, 60u);

  const SpanTracer* tracer = sys.span_tracer();
  ASSERT_NE(tracer, nullptr);
  // Every admitted transaction's trace retired at commit — nothing leaks.
  EXPECT_EQ(tracer->traces_started(), 60u);
  EXPECT_EQ(tracer->traces_finished(), 60u);
  // One per-component sample per committed transaction.
  EXPECT_EQ(m.component_histograms.lock_wait.count(), 60u);
  EXPECT_EQ(m.component_histograms.io.count(), 60u);
  EXPECT_EQ(m.component_histograms.retry.count(), 60u);

  ASSERT_EQ(tracer->exemplars().size(), 60u);
  bool saw_abort = false;
  for (const Exemplar& e : tracer->exemplars()) {
    const double sum = e.path.Sum();
    EXPECT_EQ(std::memcmp(&sum, &e.response_ms, sizeof(double)), 0);
    ASSERT_FALSE(e.spans.empty());
    EXPECT_EQ(e.spans.front().kind, SpanKind::kTxn);
    // The root covers the whole response, closed at retirement.
    EXPECT_DOUBLE_EQ(e.spans.front().end_ms - e.spans.front().begin_ms,
                     e.response_ms);
    ExpectNested(e);
    for (const ExemplarSpan& s : e.spans) {
      if (s.abort_cause != AbortCause::kNone) saw_abort = true;
    }
  }
  // The contended no-wait run restarts transactions; the protocol must
  // have annotated the aborted attempts.
  if (m.transaction_restarts > 0) EXPECT_TRUE(saw_abort);
}

TEST(SpanTracing, TracingIsSimulationNeutral) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  auto run = [&base](bool traced, double rate) {
    core::VoodbConfig cfg = TracedConfig();
    cfg.trace_spans = traced;
    cfg.trace_sample_rate = rate;
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/5);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5).Derive(1));
    return sys.RunTransactions(gen, 80);
  };
  const core::PhaseMetrics off = run(false, 1.0);
  const core::PhaseMetrics on = run(true, 1.0);
  const core::PhaseMetrics partial = run(true, 0.25);

  for (const core::PhaseMetrics* m : {&on, &partial}) {
    EXPECT_EQ(m->transactions, off.transactions);
    EXPECT_EQ(m->object_accesses, off.object_accesses);
    EXPECT_EQ(m->transaction_restarts, off.transaction_restarts);
    EXPECT_EQ(m->total_ios, off.total_ios);
    EXPECT_EQ(m->buffer_hits, off.buffer_hits);
    // Bit-compared: tracing must not move a single event.
    EXPECT_EQ(std::memcmp(&m->sim_time_ms, &off.sim_time_ms,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&m->mean_response_ms, &off.mean_response_ms,
                          sizeof(double)),
              0);
  }
  // Partial sampling traces fewer transactions but the same simulation.
  EXPECT_EQ(on.component_histograms.io.count(), 80u);
  EXPECT_LT(partial.component_histograms.io.count(), 80u);
  EXPECT_GT(partial.component_histograms.io.count(), 0u);
}

/// Checks JSON structural sanity without a parser: non-empty, object
/// framing, balanced braces/brackets outside string literals.
void ExpectBalancedJson(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(SpanTracing, PerfettoExportIsWellFormed) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::VoodbSystem sys(TracedConfig(), &base, nullptr, /*seed=*/5);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(5).Derive(1));
  sys.RunTransactions(gen, 30);
  const std::string json =
      SpanTracer::PerfettoJson(sys.span_tracer()->exemplars());
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- Cross-shard stitching --------------------------------------------------

core::VoodbConfig ShardedTracedConfig() {
  core::VoodbConfig cfg = TracedConfig();
  cfg.shards = 2;
  cfg.multi_partition_pct = 0.5;
  cfg.num_users = 3;
  cfg.multiprogramming_level = 3;
  cfg.network_throughput_mbps = 1.0;
  cfg.trace_exemplars = 512;  // retain every tree, sub-transactions too
  return cfg;
}

TEST(SpanTracing, CrossShardStitchingBitIdenticalAcrossThreadCounts) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  auto run = [&base](size_t threads) {
    core::ShardedVoodb sys(ShardedTracedConfig(), &base, /*seed=*/7);
    if (threads > 1) {
      exp::ThreadPool pool({threads});
      sys.Run(40, &pool);
    } else {
      sys.Run(40);
    }
    return SpanTracer::PerfettoJson(sys.MergedExemplars());
  };
  const std::string serial = run(1);
  const std::string pooled = run(2);
  // The merged exemplar set — ids, spans, flow stitches — is one byte
  // stream, identical at any sim_threads.
  EXPECT_EQ(serial, pooled);
  ExpectBalancedJson(serial);
}

TEST(SpanTracing, RemoteSubTransactionsCarryTheParentTrace) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::ShardedVoodb sys(ShardedTracedConfig(), &base, /*seed=*/7);
  const core::PhaseMetrics merged = sys.Run(40);
  ASSERT_GT(sys.remote_subtxns(), 0u);
  EXPECT_GT(merged.component_histograms.io.count(), 0u);

  const std::vector<Exemplar> exemplars = sys.MergedExemplars();
  ASSERT_FALSE(exemplars.empty());
  size_t stitched = 0;
  for (const Exemplar& e : exemplars) {
    const double sum = e.path.Sum();
    EXPECT_EQ(std::memcmp(&sum, &e.response_ms, sizeof(double)), 0);
    ExpectNested(e);
    if (e.parent_global_id != 0) {
      ++stitched;
      // The parent lives on another shard (different high bits) or at
      // least is a distinct transaction.
      EXPECT_NE(e.parent_global_id, e.global_id);
    }
  }
  // Half the transactions fork a remote sub-transaction and K >= all of
  // them — some retained exemplar must be a stitched child.
  EXPECT_GT(stitched, 0u);
}

}  // namespace
}  // namespace voodb
