/// \file test_null_oid_sparsity.cpp
/// \brief Dangling-reference (kNullOid) handling on maximally sparse
/// bases.
///
/// A base generated with more classes than objects leaves whole classes
/// empty, so every reference slot demanding such a class stays kNullOid;
/// OLOCREF = 1 additionally collapses the locality window.  Every
/// traversal kind of `ocb::Workload` and the clustering policies'
/// statistics collection must skip those slots identically: no generated
/// access and no collected link may ever name kNullOid, and reclustering
/// such a base must not move phantom objects.
#include <gtest/gtest.h>

#include <set>

#include "cluster/dstc.hpp"
#include "cluster/gay_gruenwald.hpp"
#include "cluster/graph_partitioning.hpp"
#include "ocb/workload.hpp"
#include "storage/placement.hpp"

namespace voodb {
namespace {

using ocb::ObjectBase;
using ocb::OcbParameters;
using ocb::Oid;
using ocb::Transaction;
using ocb::TransactionKind;
using ocb::WorkloadGenerator;

/// NC > NO with OLOCREF = 1: the sparsest base the generator can emit.
OcbParameters SparseParams() {
  OcbParameters p;
  p.num_classes = 64;
  p.num_objects = 40;
  p.object_locality = 1;
  p.max_refs_per_class = 6;
  p.p_update = 0.2;
  p.seed = 13;
  return p;
}

TEST(NullOidSparsity, SparseBaseActuallyDangles) {
  const ObjectBase base = ObjectBase::Generate(SparseParams());
  uint64_t null_slots = 0;
  uint64_t slots = 0;
  for (Oid oid = 0; oid < base.NumObjects(); ++oid) {
    for (Oid ref : base.References(oid)) {
      ++slots;
      null_slots += ref == ocb::kNullOid ? 1 : 0;
    }
  }
  ASSERT_GT(slots, 0u);
  ASSERT_GT(null_slots, 0u) << "precondition: the base must dangle";
}

TEST(NullOidSparsity, EveryTraversalKindSkipsDanglingSlots) {
  const ObjectBase base = ObjectBase::Generate(SparseParams());
  WorkloadGenerator workload(&base, desp::RandomStream(99));
  const TransactionKind kinds[] = {
      TransactionKind::kSetOriented,      TransactionKind::kSimpleTraversal,
      TransactionKind::kHierarchyTraversal,
      TransactionKind::kStochasticTraversal,
      TransactionKind::kRandomAccess,     TransactionKind::kSequentialScan,
  };
  for (const TransactionKind kind : kinds) {
    for (int i = 0; i < 50; ++i) {
      const Transaction txn = workload.NextOfKind(kind);
      ASSERT_NE(txn.root, ocb::kNullOid);
      for (const ocb::ObjectAccess& access : txn.accesses) {
        ASSERT_NE(access.oid, ocb::kNullOid) << ToString(kind);
        ASSERT_LT(access.oid, base.NumObjects()) << ToString(kind);
      }
    }
  }
}

/// Drives `policy` with the mixed workload and reclusters; no collected
/// statistic or cluster member may name kNullOid or an out-of-range OID.
void ExercisePolicy(cluster::ClusteringPolicy& policy) {
  const ObjectBase base = ObjectBase::Generate(SparseParams());
  const storage::Placement placement = storage::Placement::Build(
      base, 512, storage::PlacementPolicy::kOptimizedSequential);
  WorkloadGenerator workload(&base, desp::RandomStream(5));
  for (int t = 0; t < 300; ++t) {
    const Transaction txn = workload.Next();
    policy.OnTransactionStart();
    for (const ocb::ObjectAccess& access : txn.accesses) {
      policy.OnObjectAccess(access.oid, access.is_write);
    }
    policy.OnTransactionEnd();
  }
  const cluster::ClusteringOutcome outcome =
      policy.Recluster(base, placement);
  std::set<Oid> seen;
  for (const auto& fragment : outcome.clusters) {
    for (Oid oid : fragment) {
      EXPECT_NE(oid, ocb::kNullOid);
      EXPECT_LT(oid, base.NumObjects());
      EXPECT_TRUE(seen.insert(oid).second);
    }
  }
  if (outcome.reorganized) {
    EXPECT_EQ(outcome.new_order.size(), base.NumObjects());
  }
}

TEST(NullOidSparsity, DstcCollectsNoNullLinks) {
  cluster::DstcParameters params;
  params.observation_period = 10;
  cluster::DstcPolicy policy(params);
  ExercisePolicy(policy);
}

TEST(NullOidSparsity, GayGruenwaldExpandsAcrossDanglingSlots) {
  cluster::GayGruenwaldParameters params;
  params.observation_period = 10;
  cluster::GayGruenwaldPolicy policy(params);
  ExercisePolicy(policy);
}

TEST(NullOidSparsity, GraphPartitioningIgnoresDanglingSlots) {
  cluster::GraphPartitioningParameters params;
  params.observation_period = 10;
  cluster::GraphPartitioningPolicy policy(params);
  ExercisePolicy(policy);
}

/// The workload's uniform dangling-slot filter and DSTC's link collection
/// agree: a traversal over the sparse base feeds DSTC only OIDs the
/// traversal itself emitted, so every tracked link endpoint is a real
/// object (frequency > 0 implies it appeared in a transaction).
TEST(NullOidSparsity, WorkloadAndDstcAgreeOnLiveObjects) {
  const ObjectBase base = ObjectBase::Generate(SparseParams());
  WorkloadGenerator workload(&base, desp::RandomStream(77));
  cluster::DstcParameters params;
  params.observation_period = 1;
  cluster::DstcPolicy policy(params);
  std::set<Oid> emitted;
  for (int t = 0; t < 200; ++t) {
    const Transaction txn =
        workload.NextOfKind(TransactionKind::kHierarchyTraversal);
    policy.OnTransactionStart();
    for (const ocb::ObjectAccess& access : txn.accesses) {
      emitted.insert(access.oid);
      policy.OnObjectAccess(access.oid, access.is_write);
    }
    policy.OnTransactionEnd();
  }
  EXPECT_EQ(policy.TrackedObjects(), emitted.size());
  EXPECT_EQ(emitted.count(ocb::kNullOid), 0u);
}

}  // namespace
}  // namespace voodb
