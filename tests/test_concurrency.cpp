/// \file test_concurrency.cpp
/// \brief End-to-end tests of the lock-manager extension inside the
/// VOODB system (wait-die restarts, serializable-history invariants).
#include <gtest/gtest.h>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

namespace voodb::core {
namespace {

ocb::OcbParameters ContendedWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 300;
  p.max_refs_per_class = 3;
  p.base_instance_size = 60;
  p.p_update = 0.5;
  p.root_region = 6;  // hot roots: transactions collide
  p.seed = 111;
  return p;
}

VoodbConfig ContendedConfig() {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 128;
  cfg.multiprogramming_level = 8;
  cfg.num_users = 8;
  cfg.use_lock_manager = true;
  cfg.get_lock_ms = 0.2;
  cfg.release_lock_ms = 0.2;
  return cfg;
}

TEST(Concurrency, ContendedWorkloadCompletesWithRestarts) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  VoodbSystem sys(ContendedConfig(), &base, nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  const PhaseMetrics m = sys.RunTransactions(gen, 120);
  EXPECT_EQ(m.transactions, 120u);
  // Hot-spot write contention with 8 concurrent transactions must
  // produce at least some wait-die aborts.
  EXPECT_GT(m.transaction_restarts, 0u);
  const LockManager* lm = sys.transaction_manager().lock_manager();
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->stats().deadlock_aborts, m.transaction_restarts);
  EXPECT_GT(lm->stats().requests, 0u);
  // All locks were released at the end.
  EXPECT_EQ(lm->ActiveTransactions(), 0u);
}

TEST(Concurrency, NoContentionMeansNoRestarts) {
  ocb::OcbParameters wl = ContendedWorkload();
  wl.p_update = 0.0;  // read-only: S locks never conflict
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  VoodbSystem sys(ContendedConfig(), &base, nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  const PhaseMetrics m = sys.RunTransactions(gen, 120);
  EXPECT_EQ(m.transaction_restarts, 0u);
}

TEST(Concurrency, SingleStreamNeverRestarts) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  VoodbConfig cfg = ContendedConfig();
  cfg.num_users = 1;
  cfg.multiprogramming_level = 1;
  VoodbSystem sys(cfg, &base, nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  const PhaseMetrics m = sys.RunTransactions(gen, 60);
  EXPECT_EQ(m.transaction_restarts, 0u);
}

TEST(Concurrency, LockManagerOffMeansNoLockState) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  VoodbConfig cfg = ContendedConfig();
  cfg.use_lock_manager = false;
  VoodbSystem sys(cfg, &base, nullptr, 13);
  EXPECT_EQ(sys.transaction_manager().lock_manager(), nullptr);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  EXPECT_EQ(sys.RunTransactions(gen, 60).transaction_restarts, 0u);
}

TEST(Concurrency, ContentionRaisesResponseTimes) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  auto mean_response = [&](bool locks) {
    VoodbConfig cfg = ContendedConfig();
    cfg.use_lock_manager = locks;
    VoodbSystem sys(cfg, &base, nullptr, 13);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
    return sys.RunTransactions(gen, 120).mean_response_ms;
  };
  // Real blocking + restarts cost more than the fixed-delay model.
  EXPECT_GT(mean_response(true), mean_response(false));
}

TEST(Concurrency, ResponseHistogramTracksPercentiles) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  VoodbSystem sys(ContendedConfig(), &base, nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  sys.RunTransactions(gen, 120);
  const desp::LogHistogram& h =
      sys.transaction_manager().response_histogram();
  EXPECT_EQ(h.count(), 120u);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
  EXPECT_GE(h.Quantile(0.5), h.min());
  EXPECT_LE(h.Quantile(0.99), h.max() * 1.05);
}

/// Property sweep: the contended workload terminates for every
/// multiprogramming level (no livelock in wait-die + backoff).
class ConcurrencyLevels : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ConcurrencyLevels, AlwaysTerminates) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  VoodbConfig cfg = ContendedConfig();
  cfg.multiprogramming_level = GetParam();
  cfg.num_users = GetParam();
  VoodbSystem sys(cfg, &base, nullptr, 17);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(17));
  const PhaseMetrics m = sys.RunTransactions(gen, 80);
  EXPECT_EQ(m.transactions, 80u);
}

INSTANTIATE_TEST_SUITE_P(Levels, ConcurrencyLevels,
                         ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace voodb::core
