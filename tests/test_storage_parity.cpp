/// \file test_storage_parity.cpp
/// \brief Parity properties of the data-oriented storage engine.
///
/// Two independent oracles guard the PR-4 refactor:
///
/// * the CSR `ObjectBase::Generate` is bit-identical — ids, classes,
///   sizes, reference targets, TotalBytes, MeanFanout — to an embedded
///   copy of the legacy per-object-vector generator, across a grid of
///   seeds and OLOCREF locality windows (including windows at and beyond
///   the base size);
/// * the flat-frame BufferManager behaves exactly like a transparent
///   reference cache built on sorted maps (std::map residency, recency
///   counters) on random access traces: same hit/miss outcome per
///   access, same eviction count, same final residency and dirty set.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "storage/buffer_manager.hpp"

namespace voodb {
namespace {

using ocb::ClassDef;
using ocb::ClassId;
using ocb::Distribution;
using ocb::ObjectBase;
using ocb::OcbParameters;
using ocb::Oid;
using ocb::Schema;
using storage::BufferManager;
using storage::PageId;
using storage::ReplacementPolicy;

// --- The legacy generator, verbatim modulo naming ---------------------------

struct LegacyObjectDef {
  Oid id = ocb::kNullOid;
  ClassId cls = 0;
  uint32_t size = 0;
  std::vector<Oid> references;
};

struct LegacyBase {
  Schema schema;
  std::vector<LegacyObjectDef> objects;
  std::vector<uint64_t> instances_per_class;
  uint64_t total_bytes = 0;

  double MeanFanout() const {
    if (objects.empty()) return 0.0;
    uint64_t refs = 0;
    for (const auto& obj : objects) {
      for (Oid r : obj.references) {
        if (r != ocb::kNullOid) ++refs;
      }
    }
    return static_cast<double>(refs) / static_cast<double>(objects.size());
  }
};

LegacyBase LegacyGenerate(const OcbParameters& params) {
  params.Validate();
  LegacyBase base;
  desp::RandomStream root_stream(params.seed);
  base.schema = Schema::Generate(params, root_stream.Derive(1));
  desp::RandomStream ref_stream = root_stream.Derive(2);

  const uint64_t no = params.num_objects;
  const uint32_t nc = params.num_classes;
  base.objects.resize(no);
  base.instances_per_class.assign(nc, 0);

  for (Oid i = 0; i < no; ++i) {
    LegacyObjectDef& obj = base.objects[i];
    obj.id = i;
    obj.cls = static_cast<ClassId>(i % nc);
    const ClassDef& cls = base.schema.Class(obj.cls);
    obj.size = cls.instance_size;
    base.total_bytes += obj.size;
    ++base.instances_per_class[obj.cls];
    obj.references.assign(cls.references.size(), ocb::kNullOid);
  }

  const auto window_limit = static_cast<int64_t>(
      std::min<uint64_t>(params.object_locality, no));
  for (Oid i = 0; i < no; ++i) {
    LegacyObjectDef& obj = base.objects[i];
    const ClassDef& cls = base.schema.Class(obj.cls);
    for (size_t slot = 0; slot < obj.references.size(); ++slot) {
      const ClassId target_class = cls.references[slot].target_class;
      if (base.instances_per_class[target_class] == 0) continue;  // dangling
      int64_t offset = 0;
      switch (params.reference_distribution) {
        case Distribution::kUniform:
          offset = ref_stream.UniformInt(0, window_limit - 1);
          break;
        case Distribution::kZipf:
          offset = ref_stream.Zipf(window_limit, params.zipf_skew);
          break;
        case Distribution::kNormal: {
          const double raw = ref_stream.Normal(
              0.0, static_cast<double>(window_limit) / 4.0);
          offset = static_cast<int64_t>(std::llround(std::fabs(raw))) %
                   window_limit;
          break;
        }
      }
      const uint64_t candidate = (i + static_cast<uint64_t>(offset)) % no;
      uint64_t snapped = candidate - (candidate % nc) + target_class;
      if (snapped >= no) {
        snapped = target_class;
      }
      obj.references[slot] = snapped;
    }
  }
  return base;
}

void ExpectBitIdentical(const OcbParameters& params) {
  const ObjectBase csr = ObjectBase::Generate(params);
  const LegacyBase legacy = LegacyGenerate(params);
  SCOPED_TRACE("seed=" + std::to_string(params.seed) +
               " olocref=" + std::to_string(params.object_locality));
  ASSERT_EQ(csr.NumObjects(), legacy.objects.size());
  EXPECT_EQ(csr.TotalBytes(), legacy.total_bytes);
  EXPECT_DOUBLE_EQ(csr.MeanFanout(), legacy.MeanFanout());
  for (ClassId c = 0; c < params.num_classes; ++c) {
    EXPECT_EQ(csr.InstancesOf(c), legacy.instances_per_class[c]);
  }
  for (Oid oid = 0; oid < csr.NumObjects(); ++oid) {
    const ocb::ObjectDef view = csr.Object(oid);
    const LegacyObjectDef& obj = legacy.objects[oid];
    ASSERT_EQ(view.id, obj.id);
    ASSERT_EQ(view.cls, obj.cls);
    ASSERT_EQ(view.size, obj.size);
    ASSERT_EQ(view.references.size(), obj.references.size());
    for (size_t slot = 0; slot < obj.references.size(); ++slot) {
      ASSERT_EQ(view.references[slot], obj.references[slot])
          << "oid " << oid << " slot " << slot;
    }
  }
}

TEST(CsrGeneratorParity, BitIdenticalAcrossSeedAndLocalityGrid) {
  for (const uint64_t seed : {1u, 42u, 1999u, 31337u}) {
    for (const uint64_t olocref : {1u, 7u, 100u, 400u, 5000u}) {
      OcbParameters p;
      p.num_classes = 20;
      p.max_refs_per_class = 6;
      p.num_objects = 400;
      p.object_locality = olocref;  // windows up to 12.5x the base size
      p.seed = seed;
      ExpectBitIdentical(p);
    }
  }
}

TEST(CsrGeneratorParity, BitIdenticalAcrossDistributions) {
  for (const Distribution dist :
       {Distribution::kUniform, Distribution::kZipf, Distribution::kNormal}) {
    OcbParameters p;
    p.num_classes = 10;
    p.num_objects = 300;
    p.reference_distribution = dist;
    p.seed = 7;
    ExpectBitIdentical(p);
  }
}

TEST(CsrGeneratorParity, BitIdenticalOnSparseBase) {
  // More classes than objects: empty classes force dangling slots.
  OcbParameters p;
  p.num_classes = 50;
  p.num_objects = 30;
  p.object_locality = 1;
  p.seed = 11;
  ExpectBitIdentical(p);
}

// --- Flat-frame cache vs a sorted-map reference cache -----------------------

/// A transparent LRU cache built on sorted maps: residency + dirty in a
/// std::map<PageId, ...>, recency as a monotone counter in a second
/// sorted map keyed by stamp.  Slow and obviously correct.
class SortedMapLruCache {
 public:
  explicit SortedMapLruCache(uint64_t capacity) : capacity_(capacity) {}

  /// Returns hit; mirrors BufferManager::Access bookkeeping.
  bool Access(PageId page, bool write) {
    const auto it = pages_.find(page);
    if (it != pages_.end()) {
      recency_.erase(it->second.stamp);
      it->second.stamp = ++clock_;
      it->second.dirty = it->second.dirty || write;
      recency_.emplace(it->second.stamp, page);
      return true;
    }
    while (pages_.size() >= capacity_) {
      const auto oldest = recency_.begin();
      pages_.erase(oldest->second);
      recency_.erase(oldest);
      ++evictions_;
    }
    pages_.emplace(page, Meta{++clock_, write});
    recency_.emplace(clock_, page);
    return false;
  }

  uint64_t evictions() const { return evictions_; }

  std::map<PageId, bool> ResidentDirty() const {
    std::map<PageId, bool> out;
    for (const auto& [page, meta] : pages_) out.emplace(page, meta.dirty);
    return out;
  }

 private:
  struct Meta {
    uint64_t stamp;
    bool dirty;
  };
  uint64_t capacity_;
  uint64_t clock_ = 0;
  uint64_t evictions_ = 0;
  std::map<PageId, Meta> pages_;
  std::map<uint64_t, PageId> recency_;
};

TEST(FlatFrameCacheModel, MatchesSortedMapReferenceOnRandomTraces) {
  for (const uint64_t capacity : {2u, 8u, 33u}) {
    for (const uint64_t seed : {3u, 17u, 91u}) {
      BufferManager flat(capacity, ReplacementPolicy::kLru);
      SortedMapLruCache reference(capacity);
      desp::RandomStream rng(seed);
      for (int step = 0; step < 20000; ++step) {
        const PageId page = static_cast<PageId>(rng.UniformInt(0, 199));
        const bool write = rng.Bernoulli(0.3);
        const bool flat_hit = flat.Access(page, write).hit;
        const bool ref_hit = reference.Access(page, write);
        ASSERT_EQ(flat_hit, ref_hit)
            << "capacity " << capacity << " seed " << seed << " step "
            << step;
      }
      EXPECT_EQ(flat.stats().evictions, reference.evictions());
      const std::map<PageId, bool> residents = reference.ResidentDirty();
      EXPECT_EQ(flat.resident_pages(), residents.size());
      uint64_t dirty = 0;
      for (const auto& [page, is_dirty] : residents) {
        EXPECT_TRUE(flat.Contains(page));
        dirty += is_dirty ? 1 : 0;
      }
      EXPECT_EQ(flat.DirtyPages(), dirty);
    }
  }
}

}  // namespace
}  // namespace voodb
