/// \file test_ocb_workload.cpp
/// \brief Tests for the OCB transaction generator (Table 5 semantics).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ocb/workload.hpp"
#include "util/check.hpp"

namespace voodb::ocb {
namespace {

OcbParameters SmallParams() {
  OcbParameters p;
  p.num_classes = 10;
  p.max_refs_per_class = 4;
  p.num_objects = 400;
  p.object_locality = 40;
  p.seed = 3;
  return p;
}

/// True when `to` is one of `from`'s reference targets in `base`.
bool IsReference(const ObjectBase& base, Oid from, Oid to) {
  for (Oid r : base.Object(from).references) {
    if (r == to) return true;
  }
  return false;
}

TEST(Workload, MixMatchesProbabilities) {
  OcbParameters p = SmallParams();
  p.p_set = 0.5;
  p.p_simple = 0.3;
  p.p_hierarchy = 0.1;
  p.p_stochastic = 0.1;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(11));
  std::map<TransactionKind, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next().kind];
  EXPECT_NEAR(counts[TransactionKind::kSetOriented] / double(kDraws), 0.5,
              0.02);
  EXPECT_NEAR(counts[TransactionKind::kSimpleTraversal] / double(kDraws), 0.3,
              0.02);
  EXPECT_NEAR(counts[TransactionKind::kHierarchyTraversal] / double(kDraws),
              0.1, 0.02);
  EXPECT_NEAR(counts[TransactionKind::kStochasticTraversal] / double(kDraws),
              0.1, 0.02);
}

TEST(Workload, FirstAccessIsTheRoot) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator gen(&base, desp::RandomStream(13));
  for (int i = 0; i < 100; ++i) {
    const Transaction txn = gen.Next();
    ASSERT_FALSE(txn.accesses.empty());
    EXPECT_EQ(txn.accesses.front().oid, txn.root);
    EXPECT_LT(txn.root, base.NumObjects());
  }
}

TEST(Workload, SetOrientedIsUniqueAndDepthBounded) {
  OcbParameters p = SmallParams();
  p.set_depth = 2;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(17));
  for (int i = 0; i < 50; ++i) {
    const Transaction txn = gen.NextOfKind(TransactionKind::kSetOriented);
    std::set<Oid> seen;
    for (const ObjectAccess& a : txn.accesses) {
      EXPECT_TRUE(seen.insert(a.oid).second) << "duplicate in set access";
    }
    // Upper bound: 1 + f + f^2 objects with fanout f = 4.
    EXPECT_LE(txn.accesses.size(), 1u + 4u + 16u);
  }
}

TEST(Workload, SetOrientedReachesOnlyReachableObjects) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator gen(&base, desp::RandomStream(19));
  const Transaction txn = gen.NextOfKind(TransactionKind::kSetOriented);
  // Every accessed object (but the root) must be referenced by some other
  // accessed object.
  std::set<Oid> accessed;
  for (const ObjectAccess& a : txn.accesses) accessed.insert(a.oid);
  for (const ObjectAccess& a : txn.accesses) {
    if (a.oid == txn.root) continue;
    bool referenced = false;
    for (Oid from : accessed) {
      if (from != a.oid && IsReference(base, from, a.oid)) {
        referenced = true;
        break;
      }
    }
    EXPECT_TRUE(referenced) << "object " << a.oid << " unreachable";
  }
}

TEST(Workload, SimpleTraversalFollowsAReferencePath) {
  OcbParameters p = SmallParams();
  p.simple_depth = 5;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(23));
  for (int i = 0; i < 50; ++i) {
    const Transaction txn = gen.NextOfKind(TransactionKind::kSimpleTraversal);
    EXPECT_LE(txn.accesses.size(), 6u);  // root + depth
    for (size_t k = 1; k < txn.accesses.size(); ++k) {
      EXPECT_TRUE(IsReference(base, txn.accesses[k - 1].oid,
                              txn.accesses[k].oid))
          << "step " << k << " does not follow a reference";
    }
  }
}

TEST(Workload, HierarchyTraversalVisitsOnceWhenConfigured) {
  OcbParameters p = SmallParams();
  p.hierarchy_depth = 3;
  p.traversal_visits_once = true;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(29));
  for (int i = 0; i < 30; ++i) {
    const Transaction txn =
        gen.NextOfKind(TransactionKind::kHierarchyTraversal);
    std::set<Oid> seen;
    for (const ObjectAccess& a : txn.accesses) {
      EXPECT_TRUE(seen.insert(a.oid).second);
    }
  }
}

TEST(Workload, HierarchyTraversalIsDeterministicPerRoot) {
  // Same root => identical access sequence (this is what makes DSTC's
  // transition statistics accumulate).
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator gen(&base, desp::RandomStream(31));
  std::map<Oid, std::vector<Oid>> sequences;
  for (int i = 0; i < 200; ++i) {
    const Transaction txn =
        gen.NextOfKind(TransactionKind::kHierarchyTraversal);
    std::vector<Oid> seq;
    for (const ObjectAccess& a : txn.accesses) seq.push_back(a.oid);
    const auto it = sequences.find(txn.root);
    if (it == sequences.end()) {
      sequences.emplace(txn.root, std::move(seq));
    } else {
      EXPECT_EQ(it->second, seq) << "root " << txn.root;
    }
  }
}

TEST(Workload, StochasticTraversalStepsAreReferences) {
  OcbParameters p = SmallParams();
  p.stochastic_depth = 10;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(37));
  for (int i = 0; i < 50; ++i) {
    const Transaction txn =
        gen.NextOfKind(TransactionKind::kStochasticTraversal);
    EXPECT_LE(txn.accesses.size(), 11u);
    for (size_t k = 1; k < txn.accesses.size(); ++k) {
      EXPECT_TRUE(IsReference(base, txn.accesses[k - 1].oid,
                              txn.accesses[k].oid));
    }
  }
}

TEST(Workload, UpdateProbabilityProducesWrites) {
  OcbParameters p = SmallParams();
  p.p_update = 0.4;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(41));
  uint64_t writes = 0;
  uint64_t total = 0;
  for (int i = 0; i < 500; ++i) {
    for (const ObjectAccess& a : gen.Next().accesses) {
      ++total;
      if (a.is_write) ++writes;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(total), 0.4,
              0.05);
}

TEST(Workload, ReadOnlyByDefault) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator gen(&base, desp::RandomStream(43));
  for (int i = 0; i < 100; ++i) {
    for (const ObjectAccess& a : gen.Next().accesses) {
      EXPECT_FALSE(a.is_write);
    }
  }
}

TEST(Workload, HotRootRegionRestrictsAndStridesRoots) {
  OcbParameters p = SmallParams();
  p.root_region = 8;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(47));
  const Oid stride = base.NumObjects() / 8;
  std::set<Oid> roots;
  for (int i = 0; i < 400; ++i) {
    const Transaction txn = gen.Next();
    EXPECT_EQ(txn.root % stride, 0u);
    roots.insert(txn.root);
  }
  EXPECT_LE(roots.size(), 8u);
  EXPECT_GE(roots.size(), 6u);  // nearly all hot roots drawn
}

TEST(Workload, DeterministicInStreamSeed) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator a(&base, desp::RandomStream(53));
  WorkloadGenerator b(&base, desp::RandomStream(53));
  for (int i = 0; i < 100; ++i) {
    const Transaction ta = a.Next();
    const Transaction tb = b.Next();
    EXPECT_EQ(ta.kind, tb.kind);
    EXPECT_EQ(ta.root, tb.root);
    ASSERT_EQ(ta.accesses.size(), tb.accesses.size());
  }
  EXPECT_EQ(a.GeneratedAccesses(), b.GeneratedAccesses());
  EXPECT_GT(a.GeneratedAccesses(), 0u);
}

TEST(Workload, RandomAccessDrawsRequestedCount) {
  OcbParameters p = SmallParams();
  p.random_access_count = 12;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(61));
  for (int i = 0; i < 30; ++i) {
    const Transaction txn = gen.NextOfKind(TransactionKind::kRandomAccess);
    EXPECT_EQ(txn.accesses.size(), 12u);
    for (const ObjectAccess& a : txn.accesses) {
      EXPECT_LT(a.oid, base.NumObjects());
    }
  }
}

TEST(Workload, RandomAccessIgnoresHotRegion) {
  // Random accesses model dictionary lookups: they roam the whole base
  // even when transaction roots come from a hot set.
  OcbParameters p = SmallParams();
  p.root_region = 4;
  p.random_access_count = 50;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(61));
  std::set<Oid> seen;
  for (int i = 0; i < 40; ++i) {
    for (const ObjectAccess& a :
         gen.NextOfKind(TransactionKind::kRandomAccess).accesses) {
      seen.insert(a.oid);
    }
  }
  EXPECT_GT(seen.size(), 100u);  // far beyond the 4 hot roots
}

TEST(Workload, SequentialScanCoversTheRootsClass) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  WorkloadGenerator gen(&base, desp::RandomStream(67));
  for (int i = 0; i < 20; ++i) {
    const Transaction txn = gen.NextOfKind(TransactionKind::kSequentialScan);
    const ClassId cls = base.Object(txn.root).cls;
    EXPECT_EQ(txn.accesses.size(), base.InstancesOf(cls));
    Oid last = 0;
    for (const ObjectAccess& a : txn.accesses) {
      EXPECT_EQ(base.Object(a.oid).cls, cls);
      EXPECT_GE(a.oid, last);  // OID order
      last = a.oid;
    }
  }
}

TEST(Workload, SequentialScanRespectsCap) {
  OcbParameters p = SmallParams();
  p.scan_max_instances = 7;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(67));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.NextOfKind(TransactionKind::kSequentialScan).accesses.size(),
              7u);
  }
}

TEST(Workload, SixKindMixMatchesProbabilities) {
  OcbParameters p = SmallParams();
  p.p_set = 0.2;
  p.p_simple = 0.2;
  p.p_hierarchy = 0.1;
  p.p_stochastic = 0.1;
  p.p_random_access = 0.2;
  p.p_scan = 0.2;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(71));
  std::map<TransactionKind, int> counts;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next().kind];
  EXPECT_NEAR(counts[TransactionKind::kRandomAccess] / double(kDraws), 0.2,
              0.02);
  EXPECT_NEAR(counts[TransactionKind::kSequentialScan] / double(kDraws), 0.2,
              0.02);
}

TEST(Workload, SixProbabilitiesMustSumToOne) {
  OcbParameters p = SmallParams();
  p.p_random_access = 0.1;  // sum now 1.1
  EXPECT_THROW(p.Validate(), util::Error);
  p.p_set = 0.15;  // back to 1.0
  p.Validate();
}

TEST(Workload, KindNames) {
  EXPECT_STREQ(ToString(TransactionKind::kSetOriented), "SET_ORIENTED");
  EXPECT_STREQ(ToString(TransactionKind::kSimpleTraversal),
               "SIMPLE_TRAVERSAL");
  EXPECT_STREQ(ToString(TransactionKind::kHierarchyTraversal),
               "HIERARCHY_TRAVERSAL");
  EXPECT_STREQ(ToString(TransactionKind::kStochasticTraversal),
               "STOCHASTIC_TRAVERSAL");
  EXPECT_STREQ(ToString(TransactionKind::kRandomAccess), "RANDOM_ACCESS");
  EXPECT_STREQ(ToString(TransactionKind::kSequentialScan),
               "SEQUENTIAL_SCAN");
}

/// Property sweep: depths bound transaction sizes for every kind.
class WorkloadDepths : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkloadDepths, TransactionSizesBoundedByDepth) {
  OcbParameters p = SmallParams();
  const uint32_t depth = GetParam();
  p.set_depth = depth;
  p.simple_depth = depth;
  p.hierarchy_depth = depth;
  p.stochastic_depth = depth;
  const ObjectBase base = ObjectBase::Generate(p);
  WorkloadGenerator gen(&base, desp::RandomStream(59));
  // Simple & stochastic traversals: at most depth + 1 accesses.
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(gen.NextOfKind(TransactionKind::kSimpleTraversal).accesses.size(),
              depth + 1);
    EXPECT_LE(
        gen.NextOfKind(TransactionKind::kStochasticTraversal).accesses.size(),
        depth + 1);
    // Set/hierarchy: bounded by the number of objects (visits-once).
    EXPECT_LE(gen.NextOfKind(TransactionKind::kSetOriented).accesses.size(),
              base.NumObjects());
    EXPECT_LE(
        gen.NextOfKind(TransactionKind::kHierarchyTraversal).accesses.size(),
        base.NumObjects());
  }
}

INSTANTIATE_TEST_SUITE_P(DepthSweep, WorkloadDepths,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace voodb::ocb
