/// \file test_random.cpp
/// \brief Tests for the DESP random streams and distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "desp/random.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(RandomStream, DeterministicBySeed) {
  RandomStream a(42);
  RandomStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomStream, DifferentSeedsDiffer) {
  RandomStream a(1);
  RandomStream b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomStream, DeriveIsDeterministicAndIndependent) {
  RandomStream parent(7);
  RandomStream c1 = parent.Derive(1);
  RandomStream c1_again = RandomStream(7).Derive(1);
  RandomStream c2 = parent.Derive(2);
  EXPECT_EQ(c1.NextU64(), c1_again.NextU64());
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

TEST(RandomStream, NextDoubleInUnitInterval) {
  RandomStream rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformIntCoversFullRangeInclusively) {
  RandomStream rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values observed
}

TEST(RandomStream, UniformIntDegenerateRange) {
  RandomStream rng(5);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
  EXPECT_THROW(rng.UniformInt(2, 1), util::Error);
}

TEST(RandomStream, UniformIntIsApproximatelyUniform) {
  RandomStream rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, kBuckets - 1))];
  }
  // Chi-square with 9 dof; 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(RandomStream, ExponentialHasRequestedMean) {
  RandomStream rng(13);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(RandomStream, ExponentialIsPositive) {
  RandomStream rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(1.0), 0.0);
  EXPECT_THROW(rng.Exponential(0.0), util::Error);
}

TEST(RandomStream, NormalMomentsMatch) {
  RandomStream rng(19);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RandomStream, NormalZeroStddevIsConstant) {
  RandomStream rng(23);
  EXPECT_DOUBLE_EQ(rng.Normal(4.0, 0.0), 4.0);
  EXPECT_THROW(rng.Normal(0.0, -1.0), util::Error);
}

TEST(RandomStream, BernoulliEdgesAndRate) {
  RandomStream rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RandomStream, ZipfZeroSkewIsUniform) {
  RandomStream rng(31);
  constexpr int64_t kN = 8;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 80000; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(kN, 0.0))];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RandomStream, ZipfRanksAreMonotonicallyLessLikely) {
  RandomStream rng(37);
  constexpr int64_t kN = 100;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 200000; ++i) {
    const int64_t r = rng.Zipf(kN, 1.0);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, kN);
    ++counts[static_cast<size_t>(r)];
  }
  // Rank 0 most popular; aggregate head beats aggregate tail.
  EXPECT_GT(counts[0], counts[10]);
  const int head = std::accumulate(counts.begin(), counts.begin() + 10, 0);
  const int tail = std::accumulate(counts.end() - 10, counts.end(), 0);
  EXPECT_GT(head, 5 * tail);
}

TEST(RandomStream, ZipfMatchesTheoreticalHeadProbability) {
  RandomStream rng(41);
  constexpr int64_t kN = 50;
  const double s = 1.0;
  double harmonic = 0.0;
  for (int64_t k = 1; k <= kN; ++k) harmonic += std::pow(k, -s);
  constexpr int kDraws = 300000;
  int rank0 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(kN, s) == 0) ++rank0;
  }
  EXPECT_NEAR(static_cast<double>(rank0) / kDraws, 1.0 / harmonic, 0.01);
}

TEST(RandomStream, DiscretePicksByWeight) {
  RandomStream rng(43);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
  EXPECT_THROW(rng.Discrete({}), util::Error);
  EXPECT_THROW(rng.Discrete({0.0, 0.0}), util::Error);
  EXPECT_THROW(rng.Discrete({-1.0, 2.0}), util::Error);
}

TEST(RandomStream, ShuffleIsAPermutation) {
  RandomStream rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

/// Property sweep: every distribution stays within its support for many
/// seeds.
class RandomStreamSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomStreamSeeds, AllDistributionsStayInSupport) {
  RandomStream rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    EXPECT_GT(rng.Exponential(0.5), 0.0);
    const int64_t z = rng.Zipf(10, 0.8);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 10);
    const int64_t k = rng.UniformInt(0, 6);
    EXPECT_GE(k, 0);
    EXPECT_LE(k, 6);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomStreamSeeds,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1999ULL,
                                           0xDEADBEEFULL, 0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace voodb::desp
