/// \file test_special_functions.cpp
/// \brief Tests for the statistical special functions against textbook
/// values (the classic Student-t table is the ground truth here; the
/// implementation itself is table-free).
#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/special_functions.hpp"

namespace voodb::util {
namespace {

TEST(RegularizedIncompleteBeta, Endpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(RegularizedIncompleteBeta, SymmetricCase) {
  // I_x(a, a) at x = 0.5 is exactly 0.5.
  EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 0.5, 0.5), 0.5, 1e-12);
}

TEST(RegularizedIncompleteBeta, KnownValues) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (double x : {0.1, 0.3, 0.7}) {
    for (double b : {1.0, 2.0, 5.0}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x),
                  1.0 - std::pow(1.0 - x, b), 1e-10)
          << "x=" << x << " b=" << b;
    }
  }
}

TEST(RegularizedIncompleteBeta, ComplementIdentity) {
  // I_x(a,b) + I_{1-x}(b,a) = 1.
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x) +
                    RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x),
                1.0, 1e-10);
  }
}

TEST(RegularizedIncompleteBeta, RejectsBadArguments) {
  EXPECT_THROW(RegularizedIncompleteBeta(0.0, 1.0, 0.5), Error);
  EXPECT_THROW(RegularizedIncompleteBeta(1.0, -1.0, 0.5), Error);
  EXPECT_THROW(RegularizedIncompleteBeta(1.0, 1.0, 1.5), Error);
}

TEST(StudentTCdf, SymmetryAndCenter) {
  EXPECT_DOUBLE_EQ(StudentTCdf(0.0, 5.0), 0.5);
  for (double t : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-12);
  }
}

TEST(StudentTCdf, MatchesCauchyForOneDof) {
  // t(1) is the Cauchy distribution: CDF = 1/2 + atan(t)/pi.
  for (double t : {-2.0, -0.5, 0.3, 1.7, 10.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-9);
  }
}

struct TQuantileCase {
  double df;
  double p;
  double expected;
};

/// Classic two-sided 95 % / 90 % / 99 % table (Abramowitz & Stegun).
class StudentTQuantileTable : public ::testing::TestWithParam<TQuantileCase> {};

TEST_P(StudentTQuantileTable, MatchesTable) {
  const TQuantileCase c = GetParam();
  EXPECT_NEAR(StudentTQuantile(c.p, c.df), c.expected, 2e-3)
      << "df=" << c.df << " p=" << c.p;
}

INSTANTIATE_TEST_SUITE_P(
    TextbookTable, StudentTQuantileTable,
    ::testing::Values(
        TQuantileCase{1, 0.975, 12.706}, TQuantileCase{2, 0.975, 4.303},
        TQuantileCase{3, 0.975, 3.182}, TQuantileCase{4, 0.975, 2.776},
        TQuantileCase{5, 0.975, 2.571}, TQuantileCase{9, 0.975, 2.262},
        TQuantileCase{10, 0.975, 2.228}, TQuantileCase{20, 0.975, 2.086},
        TQuantileCase{30, 0.975, 2.042}, TQuantileCase{60, 0.975, 2.000},
        TQuantileCase{99, 0.975, 1.984}, TQuantileCase{120, 0.975, 1.980},
        TQuantileCase{1, 0.95, 6.314}, TQuantileCase{5, 0.95, 2.015},
        TQuantileCase{10, 0.95, 1.812}, TQuantileCase{30, 0.95, 1.697},
        TQuantileCase{1, 0.995, 63.657}, TQuantileCase{5, 0.995, 4.032},
        TQuantileCase{10, 0.995, 3.169}, TQuantileCase{30, 0.995, 2.750}));

TEST(StudentTQuantile, RoundTripsThroughCdf) {
  for (double df : {1.0, 3.0, 9.0, 42.0}) {
    for (double p : {0.05, 0.2, 0.5, 0.8, 0.99}) {
      const double q = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(q, df), p, 1e-9) << "df=" << df << " p=" << p;
    }
  }
}

TEST(StudentTQuantile, NegativeBranchIsSymmetric) {
  EXPECT_NEAR(StudentTQuantile(0.025, 10.0), -StudentTQuantile(0.975, 10.0),
              1e-9);
}

TEST(StudentTQuantile, RejectsBadArguments) {
  EXPECT_THROW(StudentTQuantile(0.0, 5.0), Error);
  EXPECT_THROW(StudentTQuantile(1.0, 5.0), Error);
  EXPECT_THROW(StudentTQuantile(0.5, 0.0), Error);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.1, 0.4, 0.6, 0.9, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
}

TEST(NormalQuantile, LargeDofTApproachesNormal) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1e6), NormalQuantile(0.975), 1e-3);
}

}  // namespace
}  // namespace voodb::util
