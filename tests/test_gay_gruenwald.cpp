/// \file test_gay_gruenwald.cpp
/// \brief Tests for the Gay-Gruenwald-style structural clustering policy.
#include <gtest/gtest.h>

#include <set>

#include "cluster/gay_gruenwald.hpp"
#include "util/check.hpp"

namespace voodb::cluster {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters p;
  p.num_classes = 6;
  p.num_objects = 200;
  p.max_refs_per_class = 3;
  p.seed = 33;
  return ocb::ObjectBase::Generate(p);
}

storage::Placement DefaultPlacement(const ocb::ObjectBase& base) {
  return storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kOptimizedSequential);
}

void Heat(GayGruenwaldPolicy& policy, ocb::Oid oid, int times) {
  for (int i = 0; i < times; ++i) policy.OnObjectAccess(oid, false);
}

TEST(GayGruenwaldParameters, Validation) {
  GayGruenwaldParameters p;
  p.Validate();
  GayGruenwaldParameters bad = p;
  bad.min_heat = 0;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.max_cluster_size = 1;
  EXPECT_THROW(bad.Validate(), util::Error);
}

TEST(GayGruenwald, TracksHeat) {
  GayGruenwaldPolicy policy;
  Heat(policy, 1, 3);
  Heat(policy, 2, 1);
  EXPECT_EQ(policy.TrackedObjects(), 2u);
}

TEST(GayGruenwald, TriggerNeedsPeriodAndHotObject) {
  GayGruenwaldParameters params;
  params.observation_period = 2;
  params.min_heat = 3;
  GayGruenwaldPolicy policy(params);
  Heat(policy, 1, 2);
  policy.OnTransactionEnd();
  EXPECT_FALSE(policy.ShouldTrigger());  // period not reached
  policy.OnTransactionEnd();
  EXPECT_FALSE(policy.ShouldTrigger());  // nothing hot enough
  Heat(policy, 1, 1);  // heat 3 now
  EXPECT_TRUE(policy.ShouldTrigger());
}

TEST(GayGruenwald, ClustersFollowStructuralReferences) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GayGruenwaldParameters params;
  params.min_heat = 2;
  GayGruenwaldPolicy policy(params);
  // Heat a seed and its direct references.
  const ocb::Oid seed = 10;
  Heat(policy, seed, 5);
  std::set<ocb::Oid> expected = {seed};
  for (ocb::Oid ref : base.Object(seed).references) {
    if (ref == ocb::kNullOid) continue;
    Heat(policy, ref, 3);
    expected.insert(ref);
  }
  const ClusteringOutcome outcome = policy.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  ASSERT_GE(outcome.NumClusters(), 1u);
  // The seed's cluster contains only objects connected through references.
  const auto& cluster = outcome.clusters[0];
  EXPECT_EQ(cluster[0], seed);
  for (ocb::Oid member : cluster) {
    EXPECT_TRUE(expected.count(member))
        << "member " << member << " is not in the heated neighbourhood";
  }
}

TEST(GayGruenwald, ColdObjectsNeverClustered) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GayGruenwaldParameters params;
  params.min_heat = 5;
  GayGruenwaldPolicy policy(params);
  Heat(policy, 1, 2);  // below threshold
  Heat(policy, 2, 2);
  const ClusteringOutcome outcome = policy.Recluster(base, pl);
  EXPECT_FALSE(outcome.reorganized);
}

TEST(GayGruenwald, ClustersAreDisjointAndCapped) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GayGruenwaldParameters params;
  params.min_heat = 1;
  params.max_cluster_size = 5;
  GayGruenwaldPolicy policy(params);
  for (ocb::Oid oid = 0; oid < 100; ++oid) Heat(policy, oid, 2);
  const ClusteringOutcome outcome = policy.Recluster(base, pl);
  std::set<ocb::Oid> seen;
  for (const auto& cluster : outcome.clusters) {
    EXPECT_LE(cluster.size(), 5u);
    for (ocb::Oid oid : cluster) {
      EXPECT_TRUE(seen.insert(oid).second);
    }
  }
}

TEST(GayGruenwald, ReclusterConsumesHeat) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GayGruenwaldPolicy policy;
  Heat(policy, 1, 5);
  policy.Recluster(base, pl);
  EXPECT_EQ(policy.TrackedObjects(), 0u);
}

}  // namespace
}  // namespace voodb::cluster
