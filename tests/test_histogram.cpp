/// \file test_histogram.cpp
/// \brief Tests for the log-scale histogram collector.
#include <gtest/gtest.h>

#include <cmath>

#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogram, TracksExactMoments) {
  LogHistogram h;
  for (double v : {1.0, 10.0, 100.0}) h.Add(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(LogHistogram, QuantileWithinBucketResolution) {
  LogHistogram h(0.01, 1e6, 50);  // ~4.7% relative resolution
  RandomStream rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Uniform(10.0, 20.0));
  // Uniform(10,20): p50 = 15, p95 = 19.5.
  EXPECT_NEAR(h.Quantile(0.5), 15.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 19.5, 1.2);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(LogHistogram, ExponentialTailQuantiles) {
  LogHistogram h(0.001, 1e6, 40);
  RandomStream rng(7);
  for (int i = 0; i < 200000; ++i) h.Add(rng.Exponential(100.0));
  // Exponential(mean 100): p50 = 69.3, p99 = 460.5.
  EXPECT_NEAR(h.Quantile(0.5), 100.0 * std::log(2.0), 6.0);
  EXPECT_NEAR(h.Quantile(0.99), 100.0 * std::log(100.0), 40.0);
}

TEST(LogHistogram, UnderflowAndOverflowCounted) {
  LogHistogram h(1.0, 100.0, 10);
  h.Add(0.5);
  h.Add(-3.0);
  h.Add(1e9);
  h.Add(50.0);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 4u);   // moments still see everything
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a(0.01, 1e6, 20);
  LogHistogram b(0.01, 1e6, 20);
  LogHistogram all(0.01, 1e6, 20);
  RandomStream rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Exponential(5.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Quantile(0.9), all.Quantile(0.9), 1e-12);
  // Welford merging associates differently; only FP noise may differ.
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
}

TEST(LogHistogram, MergeRejectsDifferentBucketing) {
  LogHistogram a(0.01, 1e6, 20);
  LogHistogram b(0.01, 1e6, 10);
  EXPECT_THROW(a.Merge(b), util::Error);
}

TEST(LogHistogram, MergeRejectsDifferentRange) {
  // Same bucket count can arise from different ranges; the check must
  // compare the edges, not just the vector size — and say what differed.
  LogHistogram a(0.01, 1e6, 20);
  LogHistogram upper(0.01, 1e8, 20);  // different log_max
  LogHistogram lower(0.001, 1e5, 20);  // different log_min
  try {
    a.Merge(upper);
    FAIL() << "expected util::Error on mismatched bucketing";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("different bucketing"),
              std::string::npos)
        << "message: " << e.what();
  }
  EXPECT_THROW(a.Merge(lower), util::Error);
}

TEST(LogHistogram, QuantileMonotoneInQ) {
  // Property: Quantile must be non-decreasing in q on arbitrary data,
  // including data with underflow and overflow mass.
  RandomStream rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    LogHistogram h(0.1, 1e4, 10);
    const int n = 10 + static_cast<int>(rng.Uniform(0.0, 500.0));
    for (int i = 0; i < n; ++i) {
      h.Add(rng.Exponential(std::pow(10.0, rng.Uniform(-2.0, 5.0))));
    }
    double previous = 0.0;
    for (double q = 0.01; q < 1.0; q += 0.01) {
      const double value = h.Quantile(q);
      EXPECT_GE(value, previous) << "trial " << trial << " q " << q;
      EXPECT_GE(value, h.min());
      EXPECT_LE(value, h.max());
      previous = value;
    }
  }
}

TEST(LogHistogram, QuantileExactAtBucketEdges) {
  // One bucket per decade over [1, 1000]: edges at 1, 10, 100, 1000.
  // Ten observations in [1,10) and ten in [10,100): the median falls
  // exactly on the shared bucket edge.
  LogHistogram h(1.0, 1000.0, 1);
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  for (int i = 0; i < 10; ++i) h.Add(50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // Within the first bucket, interpolation is linear from its lower edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.5);
  // A value exactly on an edge lands in the bucket it opens.
  LogHistogram edge(1.0, 1000.0, 1);
  edge.Add(10.0);
  EXPECT_EQ(edge.buckets()[1], 1u);
  EXPECT_EQ(edge.buckets()[0], 0u);
}

TEST(LogHistogram, QuantileClampedToTrackedExtrema) {
  // Interpolation inside the last occupied bucket can overshoot the
  // largest observation; the exact tracked max must cap it.
  LogHistogram h(0.01, 1e8, 20);
  RandomStream rng(13);
  for (int i = 0; i < 1000; ++i) h.Add(rng.Exponential(100.0));
  EXPECT_LE(h.Quantile(0.999), h.max());
  EXPECT_GE(h.Quantile(0.001), h.min());
}

TEST(LogHistogram, DeltaSinceIsExactOnBuckets) {
  LogHistogram h(0.01, 1e6, 20);
  RandomStream rng(17);
  for (int i = 0; i < 500; ++i) h.Add(rng.Exponential(10.0));
  const LogHistogram snapshot = h;
  LogHistogram expected(0.01, 1e6, 20);
  for (int i = 0; i < 700; ++i) {
    const double v = rng.Exponential(10.0);
    h.Add(v);
    expected.Add(v);
  }
  const LogHistogram delta = h.DeltaSince(snapshot);
  EXPECT_EQ(delta.count(), 700u);
  EXPECT_EQ(delta.buckets(), expected.buckets());
  EXPECT_EQ(delta.underflow(), expected.underflow());
  EXPECT_EQ(delta.overflow(), expected.overflow());
  EXPECT_NEAR(delta.mean(), expected.mean(), 1e-9 * expected.mean());
  // min/max are run-cumulative by contract.
  EXPECT_DOUBLE_EQ(delta.min(), h.min());
  EXPECT_DOUBLE_EQ(delta.max(), h.max());
}

TEST(LogHistogram, DeltaSinceRejectsNonSnapshot) {
  LogHistogram h(0.01, 1e6, 20);
  h.Add(1.0);
  LogHistogram later = h;
  later.Add(2.0);
  EXPECT_THROW(h.DeltaSince(later), util::Error);  // reversed order
  LogHistogram other_bucketing(0.01, 1e6, 10);
  EXPECT_THROW(h.DeltaSince(other_bucketing), util::Error);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 10), util::Error);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 10), util::Error);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), util::Error);
  LogHistogram h;
  EXPECT_THROW(h.Quantile(0.0), util::Error);
  EXPECT_THROW(h.Quantile(1.0), util::Error);
}

}  // namespace
}  // namespace voodb::desp
