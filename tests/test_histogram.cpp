/// \file test_histogram.cpp
/// \brief Tests for the log-scale histogram collector.
#include <gtest/gtest.h>

#include <cmath>

#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogram, TracksExactMoments) {
  LogHistogram h;
  for (double v : {1.0, 10.0, 100.0}) h.Add(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(LogHistogram, QuantileWithinBucketResolution) {
  LogHistogram h(0.01, 1e6, 50);  // ~4.7% relative resolution
  RandomStream rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Uniform(10.0, 20.0));
  // Uniform(10,20): p50 = 15, p95 = 19.5.
  EXPECT_NEAR(h.Quantile(0.5), 15.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 19.5, 1.2);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(LogHistogram, ExponentialTailQuantiles) {
  LogHistogram h(0.001, 1e6, 40);
  RandomStream rng(7);
  for (int i = 0; i < 200000; ++i) h.Add(rng.Exponential(100.0));
  // Exponential(mean 100): p50 = 69.3, p99 = 460.5.
  EXPECT_NEAR(h.Quantile(0.5), 100.0 * std::log(2.0), 6.0);
  EXPECT_NEAR(h.Quantile(0.99), 100.0 * std::log(100.0), 40.0);
}

TEST(LogHistogram, UnderflowAndOverflowCounted) {
  LogHistogram h(1.0, 100.0, 10);
  h.Add(0.5);
  h.Add(-3.0);
  h.Add(1e9);
  h.Add(50.0);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 4u);   // moments still see everything
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a(0.01, 1e6, 20);
  LogHistogram b(0.01, 1e6, 20);
  LogHistogram all(0.01, 1e6, 20);
  RandomStream rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Exponential(5.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Quantile(0.9), all.Quantile(0.9), 1e-12);
  // Welford merging associates differently; only FP noise may differ.
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
}

TEST(LogHistogram, MergeRejectsDifferentBucketing) {
  LogHistogram a(0.01, 1e6, 20);
  LogHistogram b(0.01, 1e6, 10);
  EXPECT_THROW(a.Merge(b), util::Error);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 10), util::Error);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 10), util::Error);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), util::Error);
  LogHistogram h;
  EXPECT_THROW(h.Quantile(0.0), util::Error);
  EXPECT_THROW(h.Quantile(1.0), util::Error);
}

}  // namespace
}  // namespace voodb::desp
