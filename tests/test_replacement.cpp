/// \file test_replacement.cpp
/// \brief Tests for the buffer replacement policies (PGREP) and the
/// open-addressing frame table they run on.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>
#include <vector>

#include "desp/random.hpp"
#include "storage/replacement.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

/// Drives a ReplacementEngine through the same frame lifecycle the
/// BufferManager applies (free-list frame reuse, FrameTable residency),
/// exposing the page-level OnAdmit/OnAccess/PickVictim/OnEvict protocol
/// the policy contracts are written against.
class EngineHarness {
 public:
  explicit EngineHarness(ReplacementPolicy policy,
                         desp::RandomStream rng = desp::RandomStream(99),
                         uint32_t lru_k = 2)
      : engine_(policy, rng, lru_k) {}

  void OnAdmit(PageId page) {
    uint32_t frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      frame = static_cast<uint32_t>(frames_.size());
      frames_.emplace_back();
    }
    frames_[frame].page = page;
    table_.Insert(page, frame);
    engine_.OnAdmit(frames_, frame);
  }

  void OnAccess(PageId page) {
    const uint32_t frame = table_.Find(page);
    ASSERT_NE(frame, kNoFrame) << "access to non-resident page " << page;
    engine_.OnAccess(frames_, frame);
  }

  PageId PickVictim() {
    const uint32_t frame = engine_.PickVictim(frames_, table_);
    return frames_[frame].page;
  }

  void OnEvict(PageId page) {
    const uint32_t frame = table_.Find(page);
    ASSERT_NE(frame, kNoFrame) << "evicting non-resident page " << page;
    engine_.OnEvict(frames_, frame);
    table_.Erase(page);
    frames_[frame].page = kNullPage;
    frames_[frame].dirty = false;
    free_.push_back(frame);
  }

 private:
  ReplacementEngine engine_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_;
  FrameTable table_;
};

TEST(FrameTable, InsertFindErase) {
  FrameTable table;
  EXPECT_EQ(table.Find(7), kNoFrame);
  table.Insert(7, 0);
  table.Insert(9, 1);
  EXPECT_EQ(table.Find(7), 0u);
  EXPECT_EQ(table.Find(9), 1u);
  EXPECT_EQ(table.size(), 2u);
  table.Erase(7);
  EXPECT_EQ(table.Find(7), kNoFrame);
  EXPECT_EQ(table.Find(9), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FrameTable, SurvivesGrowthAndBackwardShiftDeletion) {
  // Dense keys force long probe chains and exercise rehashing plus the
  // backward-shift deletion path; a std::map shadows the truth.
  FrameTable table(4);
  std::map<PageId, uint32_t> reference;
  desp::RandomStream rng(5);
  for (int step = 0; step < 20000; ++step) {
    const PageId page = static_cast<PageId>(rng.UniformInt(0, 499));
    const auto it = reference.find(page);
    if (it == reference.end()) {
      const auto frame = static_cast<uint32_t>(step % 1024);
      table.Insert(page, frame);
      reference.emplace(page, frame);
    } else {
      table.Erase(page);
      reference.erase(it);
    }
    if (step % 100 == 0) {
      for (const auto& [p, f] : reference) {
        ASSERT_EQ(table.Find(p), f);
      }
      ASSERT_EQ(table.size(), reference.size());
    }
  }
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  EngineHarness algo(ReplacementPolicy::kLru);
  algo.OnAdmit(1);
  algo.OnAdmit(2);
  algo.OnAdmit(3);
  algo.OnAccess(1);  // order (MRU..LRU): 1 3 2
  EXPECT_EQ(algo.PickVictim(), 2u);
  algo.OnEvict(2);
  EXPECT_EQ(algo.PickVictim(), 3u);
}

TEST(Lru, MatchesReferenceImplementationOnRandomTrace) {
  EngineHarness algo(ReplacementPolicy::kLru);
  std::list<PageId> reference;  // MRU at front
  desp::RandomStream rng(7);
  std::set<PageId> resident;
  constexpr size_t kCapacity = 8;
  for (int step = 0; step < 5000; ++step) {
    const PageId page = static_cast<PageId>(rng.UniformInt(0, 20));
    if (resident.count(page)) {
      algo.OnAccess(page);
      reference.remove(page);
      reference.push_front(page);
    } else {
      if (resident.size() == kCapacity) {
        const PageId victim = algo.PickVictim();
        ASSERT_EQ(victim, reference.back());
        algo.OnEvict(victim);
        resident.erase(victim);
        reference.pop_back();
      }
      algo.OnAdmit(page);
      resident.insert(page);
      reference.push_front(page);
    }
  }
}

TEST(Fifo, EvictsOldestAdmissionRegardlessOfAccess) {
  EngineHarness algo(ReplacementPolicy::kFifo);
  algo.OnAdmit(1);
  algo.OnAdmit(2);
  algo.OnAdmit(3);
  algo.OnAccess(1);  // FIFO ignores accesses
  EXPECT_EQ(algo.PickVictim(), 1u);
  algo.OnEvict(1);
  EXPECT_EQ(algo.PickVictim(), 2u);
}

TEST(Lfu, EvictsLeastFrequentlyUsed) {
  EngineHarness algo(ReplacementPolicy::kLfu);
  algo.OnAdmit(1);
  algo.OnAdmit(2);
  algo.OnAdmit(3);
  algo.OnAccess(1);
  algo.OnAccess(1);
  algo.OnAccess(3);
  // Counts: 1->3, 2->1, 3->2.
  EXPECT_EQ(algo.PickVictim(), 2u);
  algo.OnEvict(2);
  EXPECT_EQ(algo.PickVictim(), 3u);
}

TEST(Lfu, TiesBrokenByAdmissionOrder) {
  EngineHarness algo(ReplacementPolicy::kLfu);
  algo.OnAdmit(5);
  algo.OnAdmit(6);
  EXPECT_EQ(algo.PickVictim(), 5u);
}

TEST(Lfu, ReadmissionResetsCount) {
  EngineHarness algo(ReplacementPolicy::kLfu);
  algo.OnAdmit(1);
  for (int i = 0; i < 10; ++i) algo.OnAccess(1);
  algo.OnEvict(1);
  algo.OnAdmit(2);
  algo.OnAccess(2);
  algo.OnAdmit(1);  // count restarts at 1
  EXPECT_EQ(algo.PickVictim(), 1u);
}

TEST(LruK, PagesWithoutKAccessesEvictedFirst) {
  EngineHarness algo(ReplacementPolicy::kLruK, desp::RandomStream(99), 2);
  algo.OnAdmit(1);
  algo.OnAccess(1);  // page 1 has 2 accesses -> finite distance
  algo.OnAdmit(2);   // page 2 has 1 access -> infinite distance
  EXPECT_EQ(algo.PickVictim(), 2u);
}

TEST(LruK, EvictsOldestKthAccess) {
  EngineHarness algo(ReplacementPolicy::kLruK, desp::RandomStream(99), 2);
  algo.OnAdmit(1);
  algo.OnAccess(1);  // 1: stamps {1,2}
  algo.OnAdmit(2);
  algo.OnAccess(2);  // 2: stamps {3,4}
  algo.OnAccess(1);  // 1: stamps {2,5} -> K-th stamp 2
  // K-th most recent: page1 = 2, page2 = 3 -> evict page 1.
  EXPECT_EQ(algo.PickVictim(), 1u);
}

TEST(LruK, KEqualsOneBehavesLikeLru) {
  EngineHarness lruk(ReplacementPolicy::kLruK, desp::RandomStream(99), 1);
  lruk.OnAdmit(1);
  lruk.OnAdmit(2);
  lruk.OnAccess(1);
  EXPECT_EQ(lruk.PickVictim(), 2u);
}

TEST(Clock, GivesSecondChance) {
  EngineHarness algo(ReplacementPolicy::kClock);
  algo.OnAdmit(1);
  algo.OnAdmit(2);
  algo.OnAdmit(3);
  // All have their reference weight set; the first sweep clears them and
  // the second finds page 1 (sweep order).
  EXPECT_EQ(algo.PickVictim(), 1u);
  algo.OnEvict(1);
  algo.OnAccess(2);  // refresh 2
  EXPECT_EQ(algo.PickVictim(), 3u);
}

TEST(Gclock, AccessesAccumulateWeight) {
  EngineHarness algo(ReplacementPolicy::kGclock);
  algo.OnAdmit(1);
  algo.OnAdmit(2);
  for (int i = 0; i < 3; ++i) algo.OnAccess(1);  // weight 4
  // Page 2 (weight 1) runs out of chances first.
  EXPECT_EQ(algo.PickVictim(), 2u);
}

TEST(Random, VictimIsAlwaysResident) {
  EngineHarness algo(ReplacementPolicy::kRandom);
  std::set<PageId> resident;
  for (PageId p = 0; p < 10; ++p) {
    algo.OnAdmit(p);
    resident.insert(p);
  }
  for (int i = 0; i < 8; ++i) {
    const PageId victim = algo.PickVictim();
    EXPECT_TRUE(resident.count(victim));
    algo.OnEvict(victim);
    resident.erase(victim);
  }
}

TEST(Random, IsDeterministicInSeed) {
  EngineHarness a(ReplacementPolicy::kRandom, desp::RandomStream(5));
  EngineHarness b(ReplacementPolicy::kRandom, desp::RandomStream(5));
  for (PageId p = 0; p < 20; ++p) {
    a.OnAdmit(p);
    b.OnAdmit(p);
  }
  for (int i = 0; i < 10; ++i) {
    const PageId va = a.PickVictim();
    const PageId vb = b.PickVictim();
    EXPECT_EQ(va, vb);
    a.OnEvict(va);
    b.OnEvict(vb);
  }
}

TEST(ReplacementNames, AllPoliciesNamed) {
  EXPECT_STREQ(ToString(ReplacementPolicy::kRandom), "RANDOM");
  EXPECT_STREQ(ToString(ReplacementPolicy::kFifo), "FIFO");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLfu), "LFU");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLru), "LRU");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLruK), "LRU-K");
  EXPECT_STREQ(ToString(ReplacementPolicy::kClock), "CLOCK");
  EXPECT_STREQ(ToString(ReplacementPolicy::kGclock), "GCLOCK");
}

/// Property sweep: every policy survives a random admit/access/evict
/// workout with frame reuse and always nominates a resident victim.
class AllPolicies : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(AllPolicies, RandomWorkoutMaintainsInvariants) {
  EngineHarness algo(GetParam());
  desp::RandomStream rng(31);
  std::set<PageId> resident;
  constexpr size_t kCapacity = 16;
  for (int step = 0; step < 20000; ++step) {
    const PageId page = static_cast<PageId>(rng.UniformInt(0, 99));
    if (resident.count(page)) {
      algo.OnAccess(page);
      continue;
    }
    if (resident.size() == kCapacity) {
      const PageId victim = algo.PickVictim();
      ASSERT_TRUE(resident.count(victim))
          << ToString(GetParam()) << " nominated non-resident victim";
      algo.OnEvict(victim);
      resident.erase(victim);
    }
    algo.OnAdmit(page);
    resident.insert(page);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, AllPolicies,
    ::testing::Values(ReplacementPolicy::kRandom, ReplacementPolicy::kFifo,
                      ReplacementPolicy::kLfu, ReplacementPolicy::kLru,
                      ReplacementPolicy::kLruK, ReplacementPolicy::kClock,
                      ReplacementPolicy::kGclock));

}  // namespace
}  // namespace voodb::storage
