/// \file test_replacement.cpp
/// \brief Tests for the buffer replacement policies (PGREP).
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>
#include <vector>

#include "desp/random.hpp"
#include "storage/replacement.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

std::unique_ptr<ReplacementAlgo> Make(ReplacementPolicy p, uint32_t k = 2) {
  return MakeReplacementAlgo(p, desp::RandomStream(99), k);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto algo = Make(ReplacementPolicy::kLru);
  algo->OnAdmit(1);
  algo->OnAdmit(2);
  algo->OnAdmit(3);
  algo->OnAccess(1);  // order (MRU..LRU): 1 3 2
  EXPECT_EQ(algo->PickVictim(), 2u);
  algo->OnEvict(2);
  EXPECT_EQ(algo->PickVictim(), 3u);
}

TEST(Lru, MatchesReferenceImplementationOnRandomTrace) {
  auto algo = Make(ReplacementPolicy::kLru);
  std::list<PageId> reference;  // MRU at front
  desp::RandomStream rng(7);
  std::set<PageId> resident;
  constexpr size_t kCapacity = 8;
  for (int step = 0; step < 5000; ++step) {
    const PageId page = static_cast<PageId>(rng.UniformInt(0, 20));
    if (resident.count(page)) {
      algo->OnAccess(page);
      reference.remove(page);
      reference.push_front(page);
    } else {
      if (resident.size() == kCapacity) {
        const PageId victim = algo->PickVictim();
        ASSERT_EQ(victim, reference.back());
        algo->OnEvict(victim);
        resident.erase(victim);
        reference.pop_back();
      }
      algo->OnAdmit(page);
      resident.insert(page);
      reference.push_front(page);
    }
  }
}

TEST(Fifo, EvictsOldestAdmissionRegardlessOfAccess) {
  auto algo = Make(ReplacementPolicy::kFifo);
  algo->OnAdmit(1);
  algo->OnAdmit(2);
  algo->OnAdmit(3);
  algo->OnAccess(1);  // FIFO ignores accesses
  EXPECT_EQ(algo->PickVictim(), 1u);
  algo->OnEvict(1);
  EXPECT_EQ(algo->PickVictim(), 2u);
}

TEST(Lfu, EvictsLeastFrequentlyUsed) {
  auto algo = Make(ReplacementPolicy::kLfu);
  algo->OnAdmit(1);
  algo->OnAdmit(2);
  algo->OnAdmit(3);
  algo->OnAccess(1);
  algo->OnAccess(1);
  algo->OnAccess(3);
  // Counts: 1->3, 2->1, 3->2.
  EXPECT_EQ(algo->PickVictim(), 2u);
  algo->OnEvict(2);
  EXPECT_EQ(algo->PickVictim(), 3u);
}

TEST(Lfu, TiesBrokenByAdmissionOrder) {
  auto algo = Make(ReplacementPolicy::kLfu);
  algo->OnAdmit(5);
  algo->OnAdmit(6);
  EXPECT_EQ(algo->PickVictim(), 5u);
}

TEST(Lfu, ReadmissionResetsCount) {
  auto algo = Make(ReplacementPolicy::kLfu);
  algo->OnAdmit(1);
  for (int i = 0; i < 10; ++i) algo->OnAccess(1);
  algo->OnEvict(1);
  algo->OnAdmit(2);
  algo->OnAccess(2);
  algo->OnAdmit(1);  // count restarts at 1
  EXPECT_EQ(algo->PickVictim(), 1u);
}

TEST(LruK, PagesWithoutKAccessesEvictedFirst) {
  auto algo = Make(ReplacementPolicy::kLruK, 2);
  algo->OnAdmit(1);
  algo->OnAccess(1);  // page 1 has 2 accesses -> finite distance
  algo->OnAdmit(2);   // page 2 has 1 access -> infinite distance
  EXPECT_EQ(algo->PickVictim(), 2u);
}

TEST(LruK, EvictsOldestKthAccess) {
  auto algo = Make(ReplacementPolicy::kLruK, 2);
  algo->OnAdmit(1);
  algo->OnAccess(1);  // 1: stamps {1,2}
  algo->OnAdmit(2);
  algo->OnAccess(2);  // 2: stamps {3,4}
  algo->OnAccess(1);  // 1: stamps {2,5} -> K-th stamp 2
  // K-th most recent: page1 = 2, page2 = 3 -> evict page 1.
  EXPECT_EQ(algo->PickVictim(), 1u);
}

TEST(LruK, KEqualsOneBehavesLikeLru) {
  auto lruk = Make(ReplacementPolicy::kLruK, 1);
  lruk->OnAdmit(1);
  lruk->OnAdmit(2);
  lruk->OnAccess(1);
  EXPECT_EQ(lruk->PickVictim(), 2u);
}

TEST(Clock, GivesSecondChance) {
  auto algo = Make(ReplacementPolicy::kClock);
  algo->OnAdmit(1);
  algo->OnAdmit(2);
  algo->OnAdmit(3);
  // All have their reference weight set; the first sweep clears them and
  // the second finds page 1 (sweep order).
  EXPECT_EQ(algo->PickVictim(), 1u);
  algo->OnEvict(1);
  algo->OnAccess(2);  // refresh 2
  EXPECT_EQ(algo->PickVictim(), 3u);
}

TEST(Gclock, AccessesAccumulateWeight) {
  auto algo = Make(ReplacementPolicy::kGclock);
  algo->OnAdmit(1);
  algo->OnAdmit(2);
  for (int i = 0; i < 3; ++i) algo->OnAccess(1);  // weight 4
  // Page 2 (weight 1) runs out of chances first.
  EXPECT_EQ(algo->PickVictim(), 2u);
}

TEST(Random, VictimIsAlwaysResident) {
  auto algo = Make(ReplacementPolicy::kRandom);
  std::set<PageId> resident;
  for (PageId p = 0; p < 10; ++p) {
    algo->OnAdmit(p);
    resident.insert(p);
  }
  for (int i = 0; i < 8; ++i) {
    const PageId victim = algo->PickVictim();
    EXPECT_TRUE(resident.count(victim));
    algo->OnEvict(victim);
    resident.erase(victim);
  }
}

TEST(Random, IsDeterministicInSeed) {
  auto a = MakeReplacementAlgo(ReplacementPolicy::kRandom,
                               desp::RandomStream(5));
  auto b = MakeReplacementAlgo(ReplacementPolicy::kRandom,
                               desp::RandomStream(5));
  for (PageId p = 0; p < 20; ++p) {
    a->OnAdmit(p);
    b->OnAdmit(p);
  }
  for (int i = 0; i < 10; ++i) {
    const PageId va = a->PickVictim();
    const PageId vb = b->PickVictim();
    EXPECT_EQ(va, vb);
    a->OnEvict(va);
    b->OnEvict(vb);
  }
}

TEST(ReplacementNames, AllPoliciesNamed) {
  EXPECT_STREQ(ToString(ReplacementPolicy::kRandom), "RANDOM");
  EXPECT_STREQ(ToString(ReplacementPolicy::kFifo), "FIFO");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLfu), "LFU");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLru), "LRU");
  EXPECT_STREQ(ToString(ReplacementPolicy::kLruK), "LRU-K");
  EXPECT_STREQ(ToString(ReplacementPolicy::kClock), "CLOCK");
  EXPECT_STREQ(ToString(ReplacementPolicy::kGclock), "GCLOCK");
}

/// Property sweep: every policy survives a random admit/access/evict
/// workout and always nominates a resident victim.
class AllPolicies : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(AllPolicies, RandomWorkoutMaintainsInvariants) {
  auto algo = Make(GetParam());
  desp::RandomStream rng(31);
  std::set<PageId> resident;
  constexpr size_t kCapacity = 16;
  for (int step = 0; step < 20000; ++step) {
    const PageId page = static_cast<PageId>(rng.UniformInt(0, 99));
    if (resident.count(page)) {
      algo->OnAccess(page);
      continue;
    }
    if (resident.size() == kCapacity) {
      const PageId victim = algo->PickVictim();
      ASSERT_TRUE(resident.count(victim))
          << ToString(GetParam()) << " nominated non-resident victim";
      algo->OnEvict(victim);
      resident.erase(victim);
    }
    algo->OnAdmit(page);
    resident.insert(page);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, AllPolicies,
    ::testing::Values(ReplacementPolicy::kRandom, ReplacementPolicy::kFifo,
                      ReplacementPolicy::kLfu, ReplacementPolicy::kLru,
                      ReplacementPolicy::kLruK, ReplacementPolicy::kClock,
                      ReplacementPolicy::kGclock));

}  // namespace
}  // namespace voodb::storage
