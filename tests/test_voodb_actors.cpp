/// \file test_voodb_actors.cpp
/// \brief Unit tests for the individual VOODB active resources.
#include <gtest/gtest.h>

#include "cluster/dstc.hpp"
#include "util/check.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/clustering_manager.hpp"
#include "voodb/io_subsystem.hpp"
#include "voodb/network.hpp"
#include "voodb/object_manager.hpp"

namespace voodb::core {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters p;
  p.num_classes = 6;
  p.num_objects = 150;
  p.max_refs_per_class = 3;
  p.base_instance_size = 100;
  p.seed = 51;
  return ocb::ObjectBase::Generate(p);
}

TEST(IoSubsystemActor, ExecutesIosSequentiallyWithDiskTiming) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, storage::DiskParameters{7.0, 2.0, 1.0});
  bool done = false;
  io.Execute({storage::PageIo{storage::PageIo::Kind::kRead, 5},
              storage::PageIo{storage::PageIo::Kind::kRead, 6},
              storage::PageIo{storage::PageIo::Kind::kWrite, 40}},
             [&] { done = true; });
  sched.Run();
  EXPECT_TRUE(done);
  // 10 (seek) + 3 (contiguous) + 10 (seek) = 23 ms.
  EXPECT_DOUBLE_EQ(sched.Now(), 23.0);
  EXPECT_EQ(io.reads(), 2u);
  EXPECT_EQ(io.writes(), 1u);
}

TEST(IoSubsystemActor, EmptyBatchCompletesImmediately) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, {});
  bool done = false;
  io.Execute({}, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sched.Now(), 0.0);
}

TEST(IoSubsystemActor, ConcurrentBatchesQueueOnTheDisk) {
  desp::Scheduler sched;
  IoSubsystemActor io(&sched, storage::DiskParameters{5.0, 0.0, 0.0});
  std::vector<int> order;
  io.Execute({storage::PageIo{storage::PageIo::Kind::kRead, 1}},
             [&] { order.push_back(1); });
  io.Execute({storage::PageIo{storage::PageIo::Kind::kRead, 100}},
             [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sched.Now(), 10.0);
  EXPECT_GT(io.DiskUtilization(), 0.9);
}

TEST(NetworkActor, FiniteThroughputDelays) {
  desp::Scheduler sched;
  NetworkActor net(&sched, 1.0);  // 1 MB/s = 1000 bytes/ms
  bool done = false;
  net.Transfer(4096, [&] { done = true; });
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sched.Now(), 4.096, 1e-9);
  EXPECT_EQ(net.bytes_transferred(), 4096u);
  EXPECT_FALSE(net.infinite());
}

TEST(NetworkActor, InfiniteThroughputIsImmediate) {
  desp::Scheduler sched;
  NetworkActor net(&sched, 0.0);
  bool done = false;
  net.Transfer(1 << 20, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sched.Now(), 0.0);
  EXPECT_TRUE(net.infinite());
  EXPECT_DOUBLE_EQ(net.TransferTime(12345), 0.0);
}

TEST(NetworkActor, TransfersSerializeOnTheLink) {
  desp::Scheduler sched;
  NetworkActor net(&sched, 1.0);
  std::vector<double> completions;
  net.Transfer(1000, [&] { completions.push_back(sched.Now()); });
  net.Transfer(1000, [&] { completions.push_back(sched.Now()); });
  sched.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
}

TEST(ObjectManagerActor, ResolvesSpans) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  ObjectManagerActor om(&sched, &base, 1024,
                        storage::PlacementPolicy::kOptimizedSequential, 1.0);
  for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
    const storage::PageSpan span = om.SpanOf(oid);
    EXPECT_NE(span.first, storage::kNullPage);
    EXPECT_GE(span.count, 1u);
    EXPECT_LT(span.first, om.NumPages());
  }
}

TEST(ObjectManagerActor, RelocationMovesToFreshTailPages) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  ObjectManagerActor om(&sched, &base, 1024,
                        storage::PlacementPolicy::kOptimizedSequential, 1.0);
  const uint64_t pages_before = om.NumPages();
  const std::vector<ocb::Oid> moved = {3, 77, 12};
  const auto io = om.ApplyRelocation(moved);
  EXPECT_FALSE(io.pages_to_read.empty());
  EXPECT_FALSE(io.pages_to_write.empty());
  for (storage::PageId p : io.pages_to_read) EXPECT_LT(p, pages_before);
  for (storage::PageId p : io.pages_to_write) EXPECT_GE(p, pages_before);
  for (ocb::Oid oid : moved) {
    EXPECT_GE(om.SpanOf(oid).first, pages_before);
  }
}

TEST(ObjectManagerActor, AdjacencyListsReferencedPages) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  ObjectManagerActor om(&sched, &base, 1024,
                        storage::PlacementPolicy::kOptimizedSequential, 1.0);
  // For a page holding object X with reference to Y, Y's page must appear.
  const ocb::Oid x = 0;
  const storage::PageId xp = om.SpanOf(x).first;
  const auto& refs = base.Object(x).references;
  const auto& adjacent = om.ReferencedPages(xp);
  for (ocb::Oid ref : refs) {
    if (ref == ocb::kNullOid) continue;
    const storage::PageId rp = om.SpanOf(ref).first;
    if (rp == xp) continue;  // same page excluded by construction
    EXPECT_NE(std::find(adjacent.begin(), adjacent.end(), rp),
              adjacent.end())
        << "page of reference " << ref << " missing from adjacency";
  }
  // Adjacency never contains the page itself.
  EXPECT_EQ(std::find(adjacent.begin(), adjacent.end(), xp), adjacent.end());
}

VoodbConfig TinyConfig(bool vm) {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 8;
  cfg.use_virtual_memory = vm;
  cfg.multiprogramming_level = 1;
  cfg.get_lock_ms = 0.0;
  cfg.release_lock_ms = 0.0;
  cfg.object_cpu_ms = 0.0;
  cfg.clustering_stat_cpu_ms = 0.0;
  return cfg;
}

TEST(BufferingManagerActor, HitAvoidsDisk) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  const VoodbConfig cfg = TinyConfig(false);
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  int completions = 0;
  buf.AccessPage(0, false, [&] { ++completions; });
  sched.Run();
  const uint64_t ios_after_miss = io.total_ios();
  EXPECT_EQ(ios_after_miss, 1u);
  EXPECT_TRUE(buf.Contains(0));
  buf.AccessPage(0, false, [&] { ++completions; });
  sched.Run();
  EXPECT_EQ(io.total_ios(), ios_after_miss);  // hit: no new I/O
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(buf.hits(), 1u);
  EXPECT_EQ(buf.requests(), 2u);
  EXPECT_DOUBLE_EQ(buf.HitRate(), 0.5);
}

TEST(BufferingManagerActor, SpansAccessEveryPage) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  const VoodbConfig cfg = TinyConfig(false);
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  bool done = false;
  buf.AccessSpan(storage::PageSpan{2, 3}, false, [&] { done = true; });
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(io.reads(), 3u);
  EXPECT_TRUE(buf.Contains(2));
  EXPECT_TRUE(buf.Contains(3));
  EXPECT_TRUE(buf.Contains(4));
}

TEST(BufferingManagerActor, VmModeReservesReferencedPages) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  VoodbConfig cfg = TinyConfig(true);
  cfg.buffer_pages = 64;
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  ASSERT_TRUE(buf.uses_virtual_memory());
  bool done = false;
  buf.AccessPage(0, false, [&] { done = true; });
  sched.Run();
  EXPECT_TRUE(done);
  // The faulted page is loaded; its referenced pages hold frames but are
  // not loaded (reserved).
  EXPECT_TRUE(buf.Contains(0));
  const auto& adjacent = om.ReferencedPages(0);
  for (storage::PageId p : adjacent) {
    EXPECT_FALSE(buf.Contains(p)) << "reserved page must not be loaded";
  }
  EXPECT_EQ(io.reads(), 1u);  // reservations cost no reads
}

TEST(ClusteringManagerActor, NoPolicyMeansDisabled) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  const VoodbConfig cfg = TinyConfig(false);
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  ClusteringManagerActor cm(&sched, nullptr, &om, &buf, &io);
  EXPECT_FALSE(cm.enabled());
  EXPECT_FALSE(cm.ShouldTrigger());
  ClusteringMetrics metrics;
  cm.PerformClustering([&](ClusteringMetrics m) { metrics = m; });
  sched.Run();
  EXPECT_FALSE(metrics.reorganized);
  EXPECT_EQ(cm.reorganizations(), 0u);
}

TEST(ClusteringManagerActor, DstcReorganizationChargesIo) {
  const ocb::ObjectBase base = SmallBase();
  desp::Scheduler sched;
  const VoodbConfig cfg = TinyConfig(false);
  ObjectManagerActor om(&sched, &base, cfg.page_size,
                        storage::PlacementPolicy::kOptimizedSequential, 1.0);
  IoSubsystemActor io(&sched, cfg.disk);
  BufferingManagerActor buf(&sched, cfg, &om, &io, desp::RandomStream(1));
  ClusteringManagerActor cm(&sched, std::make_unique<cluster::DstcPolicy>(),
                            &om, &buf, &io);
  EXPECT_TRUE(cm.enabled());
  // Observe a repeated traversal.
  for (int r = 0; r < 4; ++r) {
    cm.OnTransactionStart();
    for (ocb::Oid oid : {ocb::Oid{1}, ocb::Oid{2}, ocb::Oid{3}}) {
      cm.OnObjectAccess(oid, false);
    }
    cm.OnTransactionEnd();
  }
  const uint64_t pages_before = om.NumPages();
  ClusteringMetrics metrics;
  cm.PerformClustering([&](ClusteringMetrics m) { metrics = m; });
  sched.Run();
  EXPECT_TRUE(metrics.reorganized);
  EXPECT_EQ(metrics.num_clusters, 1u);
  EXPECT_GT(metrics.overhead_ios, 0u);
  EXPECT_GT(metrics.duration_ms, 0.0);
  EXPECT_GT(om.NumPages(), pages_before);
  EXPECT_EQ(cm.total_overhead_ios(), metrics.overhead_ios);
  EXPECT_EQ(cm.reorganizations(), 1u);
  EXPECT_EQ(io.total_ios(), metrics.overhead_ios);
}

}  // namespace
}  // namespace voodb::core
