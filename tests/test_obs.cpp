/// \file test_obs.cpp
/// \brief Tests for the observability layer: metric registry, snapshot
/// merging, and the simulation-time profiler.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "util/check.hpp"
#include "voodb/config.hpp"
#include "voodb/experiment.hpp"
#include "voodb/system.hpp"

namespace voodb {
namespace {

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistry, SnapshotReadsLiveCells) {
  obs::MetricRegistry registry;
  uint64_t counter = 0;
  double gauge_value = 0.0;
  desp::LogHistogram histogram;
  registry.RegisterCounter("c", &counter);
  registry.RegisterGauge("g", [&gauge_value] { return gauge_value; });
  registry.RegisterHistogram("h", &histogram);
  EXPECT_EQ(registry.size(), 3u);

  counter = 42;
  gauge_value = 2.5;
  histogram.Add(7.0);
  const obs::MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g").mean(), 2.5);
  EXPECT_EQ(snap.gauges.at("g").count(), 1u);
  EXPECT_EQ(snap.histograms.at("h").count(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").max(), 7.0);

  // The registry holds handles, not copies: later snapshots see updates.
  counter = 43;
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 43u);
}

TEST(MetricRegistry, RejectsDuplicateAndNullRegistration) {
  obs::MetricRegistry registry;
  uint64_t cell = 0;
  desp::LogHistogram histogram;
  registry.RegisterCounter("name", &cell);
  EXPECT_THROW(registry.RegisterCounter("name", &cell), util::Error);
  // Cross-kind collisions are rejected too: one namespace for all metrics.
  EXPECT_THROW(registry.RegisterGauge("name", [] { return 0.0; }),
               util::Error);
  EXPECT_THROW(registry.RegisterHistogram("name", &histogram), util::Error);
  EXPECT_THROW(registry.RegisterCounter("null", nullptr), util::Error);
}

TEST(MetricSnapshot, MergeCombinesExactly) {
  obs::MetricSnapshot a;
  a.counters["c"] = 10;
  a.gauges["g"].Add(1.0);
  a.histograms["h"].Add(5.0);
  obs::MetricSnapshot b;
  b.counters["c"] = 32;
  b.counters["only_b"] = 7;
  b.gauges["g"].Add(3.0);
  b.histograms["h"].Add(500.0);
  a.Merge(b);
  EXPECT_EQ(a.counters.at("c"), 42u);
  EXPECT_EQ(a.counters.at("only_b"), 7u);
  EXPECT_EQ(a.gauges.at("g").count(), 2u);
  EXPECT_DOUBLE_EQ(a.gauges.at("g").mean(), 2.0);
  EXPECT_EQ(a.histograms.at("h").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").min(), 5.0);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").max(), 500.0);
}

/// Checks JSON structural sanity without a parser: non-empty, object
/// framing, balanced braces/brackets outside string literals.
void ExpectBalancedJson(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricSnapshot, ToJsonCarriesPercentiles) {
  obs::MetricSnapshot snap;
  snap.counters["io.reads"] = 9;
  snap.gauges["buffer.hit_rate"].Add(0.75);
  desp::RandomStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    snap.histograms["txn.response_ms"].Add(rng.Exponential(20.0));
  }
  const std::string json = snap.ToJson();
  ExpectBalancedJson(json);
  for (const char* needle :
       {"io.reads", "buffer.hit_rate", "txn.response_ms", "\"p50\"",
        "\"p95\"", "\"p99\"", "\"p999\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// --- SimProfiler ------------------------------------------------------------

TEST(SimProfiler, AttributesEveryDispatchAndAdvance) {
  desp::Scheduler scheduler;
  const uint16_t tag_a = scheduler.RegisterProfileTag("actor-a");
  const uint16_t tag_b = scheduler.RegisterProfileTag("actor-b");
  obs::SimProfiler profiler;
  profiler.Attach(&scheduler);
  {
    desp::TagScope scope(&scheduler, tag_a);
    scheduler.Schedule(10.0, [] {});
    scheduler.Schedule(20.0, [] {});
  }
  {
    desp::TagScope scope(&scheduler, tag_b);
    scheduler.Schedule(25.0, [] {});
  }
  scheduler.Run();
  EXPECT_EQ(profiler.total_events(), scheduler.ExecutedEvents());
  EXPECT_DOUBLE_EQ(profiler.total_sim_time(), scheduler.Now());
  const std::vector<obs::SimProfiler::TagStat> stats = profiler.Stats();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by ascending name; a advanced 0->10->20, b 20->25.
  EXPECT_EQ(stats[0].name, "actor-a");
  EXPECT_EQ(stats[0].events, 2u);
  EXPECT_DOUBLE_EQ(stats[0].sim_time, 20.0);
  EXPECT_EQ(stats[1].name, "actor-b");
  EXPECT_EQ(stats[1].events, 1u);
  EXPECT_DOUBLE_EQ(stats[1].sim_time, 5.0);
}

TEST(SimProfiler, TagsInheritAcrossContinuationChains) {
  // An event scheduled from inside a tagged action (no explicit TagScope)
  // inherits the firing event's tag, so a continuation chain stays
  // attributed to its originating actor.
  desp::Scheduler scheduler;
  const uint16_t tag = scheduler.RegisterProfileTag("originator");
  obs::SimProfiler profiler;
  profiler.Attach(&scheduler);
  {
    desp::TagScope scope(&scheduler, tag);
    scheduler.Schedule(1.0, [&scheduler] {
      scheduler.Schedule(2.0, [&scheduler] {
        scheduler.Schedule(3.0, [] {});
      });
    });
  }
  scheduler.Run();
  const std::vector<obs::SimProfiler::TagStat> stats = profiler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "originator");
  EXPECT_EQ(stats[0].events, 3u);
  EXPECT_DOUBLE_EQ(stats[0].sim_time, 6.0);
}

TEST(SimProfiler, DetachStopsRecording) {
  desp::Scheduler scheduler;
  obs::SimProfiler profiler;
  profiler.Attach(&scheduler);
  scheduler.Schedule(1.0, [] {});
  scheduler.Run();
  EXPECT_EQ(profiler.total_events(), 1u);
  profiler.Detach();
  scheduler.Schedule(1.0, [] {});
  scheduler.Run();
  EXPECT_EQ(profiler.total_events(), 1u);
}

TEST(SimProfiler, ChromeTraceIsWellFormed) {
  desp::Scheduler scheduler;
  const uint16_t tag = scheduler.RegisterProfileTag("worker");
  obs::SimProfiler profiler(/*capture_spans=*/true);
  profiler.Attach(&scheduler);
  {
    desp::TagScope scope(&scheduler, tag);
    for (int i = 1; i <= 5; ++i) {
      scheduler.Schedule(static_cast<double>(i), [] {});
    }
  }
  scheduler.Run();
  const std::string json = profiler.ChromeTraceJson();
  ExpectBalancedJson(json);
  for (const char* needle : {"traceEvents", "\"ph\"", "\"X\"", "worker",
                             "displayTimeUnit"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(profiler.dropped_spans(), 0u);
}

TEST(SimProfiler, MergesPartitionsByTagNameInNameOrder) {
  // Two partitions intern overlapping actor names under *different* tag
  // ids; the merged report keys on the name and sorts by it, so the
  // output is deterministic however partitions map to threads.
  desp::Scheduler p0;
  desp::Scheduler p1;
  const uint16_t disk0 = p0.RegisterProfileTag("disk");
  const uint16_t net1 = p1.RegisterProfileTag("network");
  const uint16_t disk1 = p1.RegisterProfileTag("disk");  // different id
  ASSERT_NE(disk0, disk1);
  obs::SimProfiler profiler(/*capture_spans=*/true);
  profiler.Attach(&p0, "shard0");
  profiler.Attach(&p1, "shard1");
  {
    desp::TagScope scope(&p0, disk0);
    p0.Schedule(10.0, [] {});
  }
  {
    desp::TagScope scope(&p1, net1);
    p1.Schedule(4.0, [] {});
  }
  {
    desp::TagScope scope(&p1, disk1);
    p1.Schedule(1.0, [] {});
  }
  p0.Run();
  p1.Run();
  const std::vector<obs::SimProfiler::TagStat> stats = profiler.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "disk");
  EXPECT_EQ(stats[0].events, 2u);
  EXPECT_DOUBLE_EQ(stats[0].sim_time, 11.0);  // 10.0 on p0 + 1.0 on p1
  EXPECT_EQ(stats[1].name, "network");
  EXPECT_EQ(stats[1].events, 1u);
  EXPECT_EQ(profiler.total_events(), 3u);
  EXPECT_DOUBLE_EQ(profiler.total_sim_time(), 14.0);
  // Each partition becomes its own pid, labelled via process_name.
  const std::string json = profiler.ChromeTraceJson();
  ExpectBalancedJson(json);
  for (const char* needle : {"shard0", "shard1", "process_name"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_THROW(profiler.Attach(&p0), util::Error);  // double attach
}

TEST(SimProfiler, SpanCapIsCountedNotFatal) {
  desp::Scheduler scheduler;
  obs::SimProfiler profiler(/*capture_spans=*/true, /*max_spans=*/3);
  profiler.Attach(&scheduler);
  for (int i = 1; i <= 10; ++i) {
    scheduler.Schedule(static_cast<double>(i), [] {});
  }
  scheduler.Run();
  EXPECT_EQ(profiler.total_events(), 10u);  // aggregates stay exact
  EXPECT_EQ(profiler.dropped_spans(), 7u);
  ExpectBalancedJson(profiler.ChromeTraceJson());
}

// --- End-to-end through VoodbSystem -----------------------------------------

core::ExperimentConfig SmallConfig() {
  core::ExperimentConfig ec;
  ec.system.page_size = 1024;
  ec.system.buffer_pages = 16;
  ec.workload.num_classes = 8;
  ec.workload.num_objects = 200;
  ec.workload.max_refs_per_class = 3;
  ec.workload.base_instance_size = 50;
  ec.workload.seed = 5;
  return ec;
}

TEST(SystemObservability, RegistrySeesActorCounters) {
  const core::ExperimentConfig ec = SmallConfig();
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  core::VoodbSystem sys(ec.system, &base, nullptr, /*seed=*/9);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(9).Derive(1));
  sys.RunTransactions(gen, 40);
  const obs::MetricSnapshot snap = sys.metric_registry().Snapshot();
  EXPECT_EQ(snap.counters.at("txn.committed"),
            sys.transaction_manager().committed());
  EXPECT_EQ(snap.counters.at("io.reads"), sys.io_subsystem().reads());
  EXPECT_EQ(snap.counters.at("buffer.requests"),
            sys.buffering_manager().requests());
  EXPECT_EQ(snap.histograms.at("txn.response_ms").count(),
            sys.transaction_manager().committed());
  EXPECT_GT(snap.counters.at("io.reads"), 0u);
  ExpectBalancedJson(snap.ToJson());
}

TEST(SystemObservability, ProfilerCoversTheWholeRun) {
  core::ExperimentConfig ec = SmallConfig();
  ec.system.observe = true;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  core::VoodbSystem sys(ec.system, &base, nullptr, /*seed=*/9);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(9).Derive(1));
  sys.RunTransactions(gen, 40);
  ASSERT_NE(sys.profiler(), nullptr);
  EXPECT_EQ(sys.profiler()->total_events(),
            sys.scheduler().ExecutedEvents());
  EXPECT_DOUBLE_EQ(sys.profiler()->total_sim_time(), sys.scheduler().Now());
  uint64_t events = 0;
  double sim_time = 0.0;
  for (const obs::SimProfiler::TagStat& s : sys.profiler()->Stats()) {
    events += s.events;
    sim_time += s.sim_time;
  }
  EXPECT_EQ(events, sys.profiler()->total_events());
  EXPECT_DOUBLE_EQ(sim_time, sys.profiler()->total_sim_time());
}

TEST(SystemObservability, ObservationDoesNotChangeResults) {
  // Attaching the registry + profiler must not perturb the simulation:
  // same seed with observe on and off yields identical metrics.
  const core::ExperimentConfig ec = SmallConfig();
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  auto run = [&](bool observe) {
    core::VoodbConfig cfg = ec.system;
    cfg.observe = observe;
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/31);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(31).Derive(1));
    return sys.RunTransactions(gen, 30);
  };
  const core::PhaseMetrics off = run(false);
  const core::PhaseMetrics on = run(true);
  EXPECT_EQ(on.total_ios, off.total_ios);
  EXPECT_EQ(on.buffer_hits, off.buffer_hits);
  EXPECT_EQ(on.mean_response_ms, off.mean_response_ms);
  EXPECT_EQ(on.response_histogram.buckets(),
            off.response_histogram.buckets());
}

TEST(SystemObservability, MaxResponseComesFromTheHistogram) {
  // The PhaseMetrics percentile fix: max_response_ms is the histogram's
  // tracked maximum and the quantiles bracket it.
  const core::ExperimentConfig ec = SmallConfig();
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  core::VoodbSystem sys(ec.system, &base, nullptr, /*seed=*/11);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(11).Derive(1));
  const core::PhaseMetrics m = sys.RunTransactions(gen, 50);
  ASSERT_EQ(m.response_histogram.count(), 50u);
  EXPECT_DOUBLE_EQ(m.max_response_ms, m.response_histogram.max());
  EXPECT_GT(m.max_response_ms, 0.0);
  EXPECT_LE(m.ResponseQuantileMs(0.5), m.ResponseQuantileMs(0.95));
  EXPECT_LE(m.ResponseQuantileMs(0.95), m.ResponseQuantileMs(0.999));
  EXPECT_LE(m.ResponseQuantileMs(0.999), m.max_response_ms);
  EXPECT_GE(m.mean_response_ms, m.response_histogram.min());
  EXPECT_LE(m.mean_response_ms, m.max_response_ms);
}

}  // namespace
}  // namespace voodb
