/// \file test_virtual_memory.cpp
/// \brief Tests for the Texas OS virtual-memory model.
#include <gtest/gtest.h>

#include "storage/virtual_memory.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

VmParameters Params(uint64_t frames, bool dirty_on_load = true,
                    bool hot = false) {
  VmParameters p;
  p.memory_pages = frames;
  p.dirty_on_load = dirty_on_load;
  p.reservations_enter_hot = hot;
  return p;
}

uint64_t Writes(const std::vector<PageIo>& ios) {
  uint64_t n = 0;
  for (const auto& io : ios) n += io.kind == PageIo::Kind::kWrite ? 1 : 0;
  return n;
}

TEST(VirtualMemory, FaultReadsThenHits) {
  VirtualMemoryModel vm(Params(4));
  const AccessOutcome fault = vm.Touch(3, false);
  EXPECT_FALSE(fault.hit);
  ASSERT_EQ(fault.ios.size(), 1u);
  EXPECT_EQ(fault.ios[0].kind, PageIo::Kind::kRead);
  const AccessOutcome hit = vm.Touch(3, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_TRUE(hit.ios.empty());
  EXPECT_EQ(vm.stats().faults, 1u);
  EXPECT_EQ(vm.stats().soft_hits, 1u);
}

TEST(VirtualMemory, DirtyOnLoadMakesEvictionsSwap) {
  VirtualMemoryModel vm(Params(2, /*dirty_on_load=*/true));
  vm.Touch(1, false);
  vm.Touch(2, false);
  const AccessOutcome out = vm.Touch(3, false);  // evicts page 1
  EXPECT_EQ(Writes(out.ios), 1u);  // swizzled page swaps out
  EXPECT_EQ(vm.stats().swap_writes, 1u);
}

TEST(VirtualMemory, CleanModeEvictsSilently) {
  VirtualMemoryModel vm(Params(2, /*dirty_on_load=*/false));
  vm.Touch(1, false);
  vm.Touch(2, false);
  const AccessOutcome out = vm.Touch(3, false);
  EXPECT_EQ(Writes(out.ios), 0u);
}

TEST(VirtualMemory, ExplicitWriteDirtiesEvenWithoutSwizzle) {
  VirtualMemoryModel vm(Params(2, /*dirty_on_load=*/false));
  vm.Touch(1, true);  // store into the page
  vm.Touch(2, false);
  const AccessOutcome out = vm.Touch(3, false);
  EXPECT_EQ(Writes(out.ios), 1u);
}

TEST(VirtualMemory, ReserveAllocatesFrameWithoutRead) {
  VirtualMemoryModel vm(Params(4));
  const std::vector<PageIo> ios = vm.Reserve(9);
  EXPECT_TRUE(ios.empty());
  EXPECT_EQ(vm.resident_frames(), 1u);
  EXPECT_FALSE(vm.IsLoaded(9));  // reserved, not loaded
  EXPECT_EQ(vm.stats().reservations, 1u);
  // Re-reserving is a no-op.
  vm.Reserve(9);
  EXPECT_EQ(vm.stats().reservations, 1u);
}

TEST(VirtualMemory, TouchingReservedPageStillReads) {
  VirtualMemoryModel vm(Params(4));
  vm.Reserve(9);
  const AccessOutcome out = vm.Touch(9, false);
  EXPECT_FALSE(out.hit);  // contents were never loaded
  ASSERT_EQ(out.ios.size(), 1u);
  EXPECT_EQ(out.ios[0].kind, PageIo::Kind::kRead);
  EXPECT_TRUE(vm.IsLoaded(9));
  EXPECT_EQ(vm.resident_frames(), 1u);  // frame was reused
}

TEST(VirtualMemory, ReservedEvictionCostsNothing) {
  VirtualMemoryModel vm(Params(2, /*dirty_on_load=*/true,
                               /*hot=*/false));
  vm.Reserve(1);
  vm.Reserve(2);
  const std::vector<PageIo> ios = vm.Reserve(3);  // evicts a reservation
  EXPECT_TRUE(ios.empty());
  EXPECT_EQ(vm.stats().reserved_evictions, 1u);
}

TEST(VirtualMemory, ColdReservationsSelfCannibalize) {
  // With cold insertion (default), reservations evict the LRU end where
  // earlier reservations sit, sparing loaded pages.
  VirtualMemoryModel vm(Params(3, true, /*hot=*/false));
  vm.Touch(1, false);
  vm.Touch(2, false);
  vm.Reserve(10);
  vm.Reserve(11);  // evicts reservation 10, not pages 1/2
  EXPECT_TRUE(vm.IsLoaded(1));
  EXPECT_TRUE(vm.IsLoaded(2));
  EXPECT_EQ(vm.stats().reserved_evictions, 1u);
}

TEST(VirtualMemory, HotReservationsEvictLoadedPages) {
  // With MRU insertion (Linux 2.0 pathology), reservations push loaded
  // pages out — the mechanism behind Figure 11's exponential swap.
  VirtualMemoryModel vm(Params(3, true, /*hot=*/true));
  vm.Touch(1, false);
  vm.Touch(2, false);
  vm.Touch(3, false);
  const std::vector<PageIo> ios = vm.Reserve(10);  // evicts page 1 (dirty)
  EXPECT_EQ(Writes(ios), 1u);
  EXPECT_FALSE(vm.IsLoaded(1));
}

TEST(VirtualMemory, ResizeEvictsDown) {
  VirtualMemoryModel vm(Params(8));
  for (PageId p = 0; p < 8; ++p) vm.Touch(p, false);
  const std::vector<PageIo> ios = vm.Resize(3);
  EXPECT_EQ(vm.resident_frames(), 3u);
  EXPECT_EQ(Writes(ios), 5u);  // dirty-on-load pages swap out
}

TEST(VirtualMemory, DropAllForgetsEverything) {
  VirtualMemoryModel vm(Params(8));
  vm.Touch(1, false);
  vm.Reserve(2);
  vm.DropAll();
  EXPECT_EQ(vm.resident_frames(), 0u);
  EXPECT_FALSE(vm.IsLoaded(1));
}

TEST(VirtualMemory, LruOrderRespectedForLoadedPages) {
  VirtualMemoryModel vm(Params(2, /*dirty_on_load=*/false));
  vm.Touch(1, false);
  vm.Touch(2, false);
  vm.Touch(1, false);  // 1 is MRU
  vm.Touch(3, false);  // evicts 2
  EXPECT_TRUE(vm.IsLoaded(1));
  EXPECT_FALSE(vm.IsLoaded(2));
}

TEST(VirtualMemory, StatsAccounting) {
  VirtualMemoryModel vm(Params(4));
  for (PageId p = 0; p < 6; ++p) vm.Touch(p, false);
  vm.Touch(5, false);
  const VmStats& s = vm.stats();
  EXPECT_EQ(s.touches, 7u);
  EXPECT_EQ(s.faults, 6u);
  EXPECT_EQ(s.soft_hits, 1u);
  EXPECT_EQ(s.reads, s.faults);
}

TEST(VirtualMemory, RejectsZeroFrames) {
  EXPECT_THROW(VirtualMemoryModel(Params(0)), util::Error);
  VirtualMemoryModel vm(Params(4));
  EXPECT_THROW(vm.Resize(0), util::Error);
}

}  // namespace
}  // namespace voodb::storage
