/// \file test_exp_report.cpp
/// \brief Tests for the JSON/CSV result emitters and run manifests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "desp/random.hpp"
#include "exp/farm.hpp"
#include "exp/report.hpp"
#include "util/check.hpp"

namespace voodb::exp {
namespace {

TEST(JsonWriterTest, BuildsNestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("run");
  w.Key("n").Value(uint64_t{3});
  w.Key("ok").Value(true);
  w.Key("items").BeginArray().Value(1.5).Value(int64_t{-2}).Null().EndArray();
  w.Key("nested").BeginObject().Key("x").Value(0.25).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"run\",\"n\":3,\"ok\":true,"
            "\"items\":[1.5,-2,null],\"nested\":{\"x\":0.25}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").Value("a\"b\\c\nd\te\x01");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.Value(1.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1]");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  JsonWriter w;
  w.BeginArray().Value(0.95).Value(1.0 / 3.0).EndArray();
  // 0.95 prints short, 1/3 prints with enough digits to round-trip.
  EXPECT_EQ(w.str(), "[0.95,0.333333333333333" "31]");
}

desp::ReplicationResult SampleResult(uint64_t replications) {
  FarmOptions options;
  options.threads = 1;
  options.base_seed = 3;
  return ReplicationFarm(
             [](uint64_t seed, desp::MetricSink& sink) {
               desp::RandomStream rng(seed);
               sink.Observe("ios", rng.Uniform(100.0, 200.0));
               sink.Observe("hit_rate", rng.Uniform(0.0, 1.0));
             },
             options)
      .Run(replications);
}

TEST(ResultToJsonTest, ContainsManifestAndPerMetricStats) {
  RunManifest manifest;
  manifest.name = "unit";
  manifest.base_seed = 3;
  manifest.replications = 10;
  manifest.threads = 2;
  manifest.wall_clock_ms = 12.5;
  manifest.notes.emplace_back("transactions", "1000");
  const std::string json = ResultToJson(manifest, SampleResult(10));
  EXPECT_NE(json.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"replications\":10"), std::string::npos);
  EXPECT_NE(json.find("\"notes\":{\"transactions\":\"1000\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ios\":{\"count\":10,\"mean\":"), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"ci_half_width\":"), std::string::npos);
}

TEST(ResultToJsonTest, SingleReplicationCiIsNull) {
  RunManifest manifest;
  manifest.name = "single";
  const std::string json = ResultToJson(manifest, SampleResult(1));
  // n = 1: infinite half-width has no JSON number form.
  EXPECT_NE(json.find("\"ci_half_width\":null"), std::string::npos);
}

std::vector<GridCell> SampleCells() {
  SweepGrid grid;
  grid.Axis("buffer_pages", {8, 64});
  FarmOptions options;
  options.threads = 1;
  return RunGrid(
      grid,
      [](const GridPoint& p) {
        const double scale = p.Get("buffer_pages");
        return [scale](uint64_t seed, desp::MetricSink& sink) {
          desp::RandomStream rng(seed);
          sink.Observe("ios", scale * rng.Uniform(1.0, 2.0));
        };
      },
      5, options);
}

TEST(GridToJsonTest, OneEntryPerCellWithCoords) {
  RunManifest manifest;
  manifest.name = "grid";
  const std::string json = GridToJson(manifest, SampleCells());
  EXPECT_NE(json.find("\"cells\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"buffer_pages=8\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"buffer_pages=64\""), std::string::npos);
  EXPECT_NE(json.find("\"coords\":{\"buffer_pages\":8}"), std::string::npos);
}

TEST(GridToCsvTest, OneRowPerCellMetric) {
  const std::string csv = GridToCsv(SampleCells(), 0.95);
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "buffer_pages,metric,count,mean,ci_half_width,stddev,min,max");
  int rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 2);  // 2 cells x 1 metric
  EXPECT_EQ(GridToCsv({}, 0.95), "");
}

TEST(WriteFileTest, WritesAndFailsLoudly) {
  const std::string path = "test_exp_report_tmp.json";
  WriteFile(path, "{\"ok\":true}");
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"ok\":true}");
  std::remove(path.c_str());
  EXPECT_THROW(WriteFile("no/such/dir/file.json", "x"), util::Error);
}

}  // namespace
}  // namespace voodb::exp
