/// \file test_ocb_object_base.cpp
/// \brief Tests for the OCB object-base generator.
#include <gtest/gtest.h>

#include "ocb/object_base.hpp"
#include "util/check.hpp"

namespace voodb::ocb {
namespace {

OcbParameters SmallParams() {
  OcbParameters p;
  p.num_classes = 10;
  p.max_refs_per_class = 4;
  p.num_objects = 500;
  p.object_locality = 50;
  p.seed = 77;
  return p;
}

TEST(ObjectBase, GeneratesRequestedObjectCount) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  EXPECT_EQ(base.NumObjects(), 500u);
  for (Oid i = 0; i < 500; ++i) {
    EXPECT_EQ(base.Object(i).id, i);
  }
}

TEST(ObjectBase, RoundRobinClassAssignment) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  for (Oid i = 0; i < base.NumObjects(); ++i) {
    EXPECT_EQ(base.Object(i).cls, static_cast<ClassId>(i % 10));
  }
  // Every class gets NO/NC instances.
  for (ClassId c = 0; c < 10; ++c) {
    EXPECT_EQ(base.InstancesOf(c), 50u);
  }
}

TEST(ObjectBase, SizesMatchClassDefinition) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  uint64_t total = 0;
  for (Oid oid = 0; oid < base.NumObjects(); ++oid) {
    const ObjectDef obj = base.Object(oid);
    EXPECT_EQ(obj.size, base.schema().Class(obj.cls).instance_size);
    EXPECT_EQ(obj.size, base.SizeOf(oid));
    total += obj.size;
  }
  EXPECT_EQ(base.TotalBytes(), total);
}

TEST(ObjectBase, ReferencesPointToDemandedClass) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  for (Oid oid = 0; oid < base.NumObjects(); ++oid) {
    const ObjectDef obj = base.Object(oid);
    const auto& class_refs = base.schema().Class(obj.cls).references;
    ASSERT_EQ(obj.references.size(), class_refs.size());
    for (size_t slot = 0; slot < obj.references.size(); ++slot) {
      const Oid target = obj.references[slot];
      if (target == kNullOid) continue;
      ASSERT_LT(target, base.NumObjects());
      EXPECT_EQ(base.Object(target).cls, class_refs[slot].target_class);
    }
  }
}

TEST(ObjectBase, ReferenceSlotsAreMostlyLive) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  EXPECT_GT(base.MeanFanout(), 1.0);
}

TEST(ObjectBase, DeterministicInSeed) {
  const ObjectBase a = ObjectBase::Generate(SmallParams());
  const ObjectBase b = ObjectBase::Generate(SmallParams());
  ASSERT_EQ(a.NumObjects(), b.NumObjects());
  for (Oid i = 0; i < a.NumObjects(); ++i) {
    EXPECT_EQ(a.Object(i).references, b.Object(i).references);
  }
}

TEST(ObjectBase, DifferentSeedsShuffleReferences) {
  OcbParameters p1 = SmallParams();
  OcbParameters p2 = SmallParams();
  p2.seed = p1.seed + 1;
  const ObjectBase a = ObjectBase::Generate(p1);
  const ObjectBase b = ObjectBase::Generate(p2);
  int differing = 0;
  for (Oid i = 0; i < a.NumObjects(); ++i) {
    if (a.Object(i).references != b.Object(i).references) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(ObjectBase, GrowsWithParameters) {
  OcbParameters small = SmallParams();
  OcbParameters big = SmallParams();
  big.num_objects = 1000;
  EXPECT_GT(ObjectBase::Generate(big).TotalBytes(),
            ObjectBase::Generate(small).TotalBytes());
}

TEST(ObjectBase, PaperReferenceBaseSizes) {
  // §4.3: the NC=50 / NO=20000 base occupies ~20 MB in Texas and ~28 MB
  // in O2.  Check the payload is in the right range (~16 MB payload
  // packs to ~19 MB at 4 KB pages).
  OcbParameters p;
  p.num_classes = 50;
  p.num_objects = 20000;
  const ObjectBase base = ObjectBase::Generate(p);
  const double mb = static_cast<double>(base.TotalBytes()) / (1024 * 1024);
  EXPECT_GT(mb, 12.0);
  EXPECT_LT(mb, 22.0);
}

TEST(ObjectBase, OutOfRangeAccessThrows) {
  const ObjectBase base = ObjectBase::Generate(SmallParams());
  EXPECT_THROW(base.Object(500), util::Error);
  EXPECT_THROW(base.InstancesOf(10), util::Error);
}

/// Property sweep over distributions: generated references stay valid.
class ObjectBaseDistributions
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(ObjectBaseDistributions, ReferencesAlwaysValid) {
  OcbParameters p = SmallParams();
  p.reference_distribution = GetParam();
  const ObjectBase base = ObjectBase::Generate(p);
  for (Oid oid = 0; oid < base.NumObjects(); ++oid) {
    for (Oid target : base.References(oid)) {
      if (target != kNullOid) {
        EXPECT_LT(target, base.NumObjects());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, ObjectBaseDistributions,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kZipf,
                                           Distribution::kNormal));

}  // namespace
}  // namespace voodb::ocb
