/// \file test_exp_farm.cpp
/// \brief Determinism and correctness tests for the parallel replication
/// farm: same base seed ⇒ bit-identical results at any thread count, on
/// both synthetic models and full VOODB experiments.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "desp/random.hpp"
#include "exp/farm.hpp"
#include "util/check.hpp"
#include "voodb/experiment.hpp"

namespace voodb::exp {
namespace {

/// Asserts every metric of `a` and `b` is bitwise identical (count, mean,
/// variance, min, max) — no tolerance anywhere.
void ExpectBitIdentical(const desp::ReplicationResult& a,
                        const desp::ReplicationResult& b) {
  ASSERT_EQ(a.replications(), b.replications());
  const std::vector<std::string> names = a.MetricNames();
  ASSERT_EQ(names, b.MetricNames());
  for (const std::string& name : names) {
    const desp::Tally& ta = a.Metric(name);
    const desp::Tally& tb = b.Metric(name);
    EXPECT_EQ(ta.count(), tb.count()) << name;
    EXPECT_EQ(ta.mean(), tb.mean()) << name;
    EXPECT_EQ(ta.variance(), tb.variance()) << name;
    EXPECT_EQ(ta.min(), tb.min()) << name;
    EXPECT_EQ(ta.max(), tb.max()) << name;
  }
  const std::vector<std::string> histograms = a.HistogramNames();
  ASSERT_EQ(histograms, b.HistogramNames());
  for (const std::string& name : histograms) {
    const desp::LogHistogram& ha = a.Histogram(name);
    const desp::LogHistogram& hb = b.Histogram(name);
    EXPECT_EQ(ha.buckets(), hb.buckets()) << name;
    EXPECT_EQ(ha.underflow(), hb.underflow()) << name;
    EXPECT_EQ(ha.overflow(), hb.overflow()) << name;
    EXPECT_EQ(ha.count(), hb.count()) << name;
    EXPECT_EQ(ha.mean(), hb.mean()) << name;
    EXPECT_EQ(ha.stddev(), hb.stddev()) << name;
    EXPECT_EQ(ha.min(), hb.min()) << name;
    EXPECT_EQ(ha.max(), hb.max()) << name;
  }
}

/// A model with real floating-point work and several metrics; the value
/// depends only on the seed, as the farm contract requires.
void NoisyModel(uint64_t seed, desp::MetricSink& sink) {
  desp::RandomStream rng(seed);
  double acc = 0.0;
  for (int i = 0; i < 200; ++i) acc += rng.Exponential(3.0);
  sink.Observe("sum", acc);
  sink.Observe("normal", rng.Normal(10.0, 2.0));
  sink.Observe("uniform", rng.Uniform(-1.0, 1.0));
}

/// NoisyModel plus a per-replication latency distribution, so the
/// histogram reduction path is exercised alongside the scalar one.
void HistogramModel(uint64_t seed, desp::MetricSink& sink) {
  NoisyModel(seed, sink);
  desp::RandomStream rng(seed ^ 0xD157);
  desp::LogHistogram latency;
  for (int i = 0; i < 300; ++i) latency.Add(rng.Exponential(25.0));
  sink.ObserveHistogram("latency_ms", latency);
}

TEST(ReplicationFarm, SeedChainMatchesSerialDerivation) {
  uint64_t sm = 1234;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(desp::SplitMix64(sm));
  EXPECT_EQ(ReplicationFarm::DeriveSeeds(1234, 10), expected);
}

TEST(ReplicationFarm, BitIdenticalAcrossThreadCounts) {
  FarmOptions serial_options;
  serial_options.threads = 1;
  serial_options.base_seed = 99;
  const desp::ReplicationResult serial =
      ReplicationFarm(NoisyModel, serial_options).Run(100);
  for (const size_t threads : {2u, 3u, 7u, 16u}) {
    FarmOptions options;
    options.threads = threads;
    options.base_seed = 99;
    const desp::ReplicationResult parallel =
        ReplicationFarm(NoisyModel, options).Run(100);
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(ReplicationFarm, MatchesSerialReplicationRunner) {
  // The acceptance bar of the subsystem: a 100-replication parallel run
  // reports exactly what the (serial) desp::ReplicationRunner reports.
  const desp::ReplicationResult serial =
      desp::ReplicationRunner(NoisyModel, 4242).Run(100);
  FarmOptions options;
  options.threads = 8;
  options.base_seed = 4242;
  const desp::ReplicationResult parallel =
      ReplicationFarm(NoisyModel, options).Run(100);
  ExpectBitIdentical(serial, parallel);
}

TEST(ReplicationFarm, FullVoodbExperimentIsThreadCountInvariant) {
  // Cross-layer determinism: an actual discrete-event simulation (buffer
  // manager, transactions, disk model) replicated serially and on the
  // farm must agree on every metric, bit for bit.
  core::ExperimentConfig ec;
  ec.system.system_class = core::SystemClass::kCentralized;
  ec.system.page_size = 1024;
  ec.system.buffer_pages = 16;
  ec.system.multiprogramming_level = 1;
  ec.workload.num_classes = 8;
  ec.workload.num_objects = 300;
  ec.workload.max_refs_per_class = 3;
  ec.workload.base_instance_size = 60;
  ec.workload.hot_transactions = 30;
  ec.workload.seed = 71;
  ec.replications = 12;
  ec.threads = 1;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  const desp::ReplicationResult serial = core::Experiment::RunOnBase(ec, base);
  ec.threads = 6;
  const desp::ReplicationResult parallel =
      core::Experiment::RunOnBase(ec, base);
  ExpectBitIdentical(serial, parallel);
  EXPECT_GT(serial.Metric("total_ios").mean(), 0.0);
}

TEST(ReplicationFarm, RunToPrecisionMatchesSerialRunner) {
  auto model = [](uint64_t seed, desp::MetricSink& sink) {
    desp::RandomStream rng(seed);
    sink.Observe("x", rng.Uniform(9.0, 11.0));
  };
  const desp::ReplicationResult serial =
      desp::ReplicationRunner(model, 7).RunToPrecision("x", 0.05, 10, 200);
  FarmOptions options;
  options.threads = 4;
  options.base_seed = 7;
  const desp::ReplicationResult parallel =
      ReplicationFarm(model, options).RunToPrecision("x", 0.05, 10, 200);
  ExpectBitIdentical(serial, parallel);
}

TEST(ReplicationFarm, PropagatesModelExceptions) {
  FarmOptions options;
  options.threads = 4;
  ReplicationFarm farm(
      [](uint64_t seed, desp::MetricSink& sink) {
        if (seed % 3 == 0) throw util::Error("boom");
        sink.Observe("v", 1.0);
      },
      options);
  EXPECT_THROW(farm.Run(64), util::Error);
}

TEST(ReplicationFarm, RunsEachReplicationExactlyOnce) {
  std::atomic<int> calls{0};
  FarmOptions options;
  options.threads = 8;
  const desp::ReplicationResult result =
      ReplicationFarm(
          [&calls](uint64_t, desp::MetricSink& sink) {
            ++calls;
            sink.Observe("v", 1.0);
          },
          options)
          .Run(50);
  EXPECT_EQ(calls.load(), 50);
  EXPECT_EQ(result.replications(), 50u);
  EXPECT_EQ(result.Metric("v").count(), 50u);
}

TEST(ReplicationFarm, RejectsBadUsage) {
  EXPECT_THROW(ReplicationFarm(nullptr), util::Error);
  FarmOptions options;
  options.threads = 2;
  ReplicationFarm farm(NoisyModel, options);
  EXPECT_THROW(farm.Run(0), util::Error);
  EXPECT_THROW(farm.RunToPrecision("sum", 0.0), util::Error);
}

// --- Tally::Merge as a parallel reduction operator -------------------------

desp::Tally TallyOf(const std::vector<double>& values) {
  desp::Tally t;
  for (const double v : values) t.Add(v);
  return t;
}

desp::Tally Merged(const desp::Tally& a, const desp::Tally& b) {
  desp::Tally out = a;
  out.Merge(b);
  return out;
}

void ExpectTallyNear(const desp::Tally& a, const desp::Tally& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());  // min/max/count are exact under any order
  EXPECT_EQ(a.max(), b.max());
  const double scale = std::abs(a.mean()) + 1.0;
  EXPECT_NEAR(a.mean(), b.mean(), 1e-12 * scale);
  const double vscale = a.variance() + 1.0;
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9 * vscale);
}

TEST(TallyMerge, CommutativeAndAssociativeProperty) {
  // Property test over random partitions: Merge must behave as a
  // commutative, associative combiner (exactly for count/min/max, to
  // floating-point accuracy for mean/variance) and agree with adding all
  // observations into one tally.
  desp::RandomStream rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    auto draw = [&rng](int n) {
      std::vector<double> v;
      for (int i = 0; i < n; ++i) v.push_back(rng.Normal(50.0, 30.0));
      return v;
    };
    const std::vector<double> va = draw(1 + trial % 7);
    const std::vector<double> vb = draw(1 + (trial * 3) % 11);
    const std::vector<double> vc = draw(1 + (trial * 5) % 5);
    const desp::Tally a = TallyOf(va), b = TallyOf(vb), c = TallyOf(vc);

    ExpectTallyNear(Merged(a, b), Merged(b, a));
    ExpectTallyNear(Merged(Merged(a, b), c), Merged(a, Merged(b, c)));

    std::vector<double> all = va;
    all.insert(all.end(), vb.begin(), vb.end());
    all.insert(all.end(), vc.begin(), vc.end());
    ExpectTallyNear(Merged(Merged(a, b), c), TallyOf(all));
  }
}

TEST(TallyMerge, EmptySidesAreIdentity) {
  const desp::Tally some = TallyOf({1.0, 2.0, 3.0});
  const desp::Tally empty;
  const desp::Tally left = Merged(empty, some);
  const desp::Tally right = Merged(some, empty);
  EXPECT_EQ(left.count(), 3u);
  EXPECT_DOUBLE_EQ(left.mean(), some.mean());
  EXPECT_DOUBLE_EQ(left.variance(), some.variance());
  EXPECT_EQ(right.count(), 3u);
  EXPECT_DOUBLE_EQ(right.mean(), some.mean());
  EXPECT_DOUBLE_EQ(right.variance(), some.variance());
}

TEST(ReplicationFarm, HistogramsBitIdenticalAcrossThreadCounts) {
  // The merged LogHistograms — the source of every reported percentile —
  // must be bit-identical at any farm width, exactly like the tallies.
  FarmOptions serial_options;
  serial_options.threads = 1;
  serial_options.base_seed = 321;
  const desp::ReplicationResult serial =
      ReplicationFarm(HistogramModel, serial_options).Run(40);
  EXPECT_EQ(serial.Histogram("latency_ms").count(), 40u * 300u);
  EXPECT_GT(serial.Histogram("latency_ms").Quantile(0.99),
            serial.Histogram("latency_ms").Quantile(0.5));
  for (const size_t threads : {2u, 5u, 16u}) {
    FarmOptions options;
    options.threads = threads;
    options.base_seed = 321;
    const desp::ReplicationResult parallel =
        ReplicationFarm(HistogramModel, options).Run(40);
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(ReplicationFarm, HistogramsMatchSerialReplicationRunner) {
  const desp::ReplicationResult serial =
      desp::ReplicationRunner(HistogramModel, 777).Run(25);
  FarmOptions options;
  options.threads = 6;
  options.base_seed = 777;
  const desp::ReplicationResult parallel =
      ReplicationFarm(HistogramModel, options).Run(25);
  ExpectBitIdentical(serial, parallel);
}

TEST(ReplicationFarmReduce, SinkReductionMergesHistogramsInOrder) {
  // The MetricSink-based Reduce overload: scalars fold into tallies and
  // histograms merge, both in replication-index order regardless of the
  // order replications completed in.
  std::vector<desp::MetricSink> sinks(3);
  for (size_t i = 0; i < sinks.size(); ++i) {
    sinks[i].Observe("m", static_cast<double>(i + 1));
    desp::LogHistogram h;
    h.Add(static_cast<double>(10 * (i + 1)));
    sinks[i].ObserveHistogram("h", h);
  }
  const desp::ReplicationResult result = ReplicationFarm::Reduce(sinks);
  EXPECT_EQ(result.replications(), 3u);
  EXPECT_EQ(result.Metric("m").count(), 3u);
  EXPECT_DOUBLE_EQ(result.Metric("m").mean(), 2.0);
  EXPECT_EQ(result.Histogram("h").count(), 3u);
  EXPECT_DOUBLE_EQ(result.Histogram("h").min(), 10.0);
  EXPECT_DOUBLE_EQ(result.Histogram("h").max(), 30.0);
  EXPECT_TRUE(result.HasHistogram("h"));
  EXPECT_FALSE(result.HasHistogram("missing"));
  EXPECT_THROW(result.Histogram("missing"), util::Error);
}

TEST(ReplicationFarmReduce, OrderedReductionIsExact) {
  // Reduce() consumes per-replication observation maps in index order —
  // the very property that makes thread count irrelevant.
  std::vector<std::map<std::string, double>> obs(3);
  obs[0] = {{"m", 1.0}};
  obs[1] = {{"m", 2.0}};
  obs[2] = {{"m", 6.0}};
  const desp::ReplicationResult result = ReplicationFarm::Reduce(obs);
  EXPECT_EQ(result.replications(), 3u);
  EXPECT_EQ(result.Metric("m").count(), 3u);
  EXPECT_DOUBLE_EQ(result.Metric("m").mean(), 3.0);
  EXPECT_DOUBLE_EQ(result.Metric("m").min(), 1.0);
  EXPECT_DOUBLE_EQ(result.Metric("m").max(), 6.0);
}

}  // namespace
}  // namespace voodb::exp
