/// \file test_ycsb.cpp
/// \brief Tests for the YCSB-style zipfian workload source.
#include <gtest/gtest.h>

#include <map>

#include "ocb/ycsb.hpp"
#include "voodb/system.hpp"

namespace voodb::ocb {
namespace {

OcbParameters YcsbParams() {
  OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 500;
  p.max_refs_per_class = 3;
  p.seed = 7;
  p.ycsb_skew = 0.99;
  p.ycsb_read_pct = 0.95;
  p.ycsb_ops_per_txn = 8;
  return p;
}

TEST(YcsbZipf, EveryTransactionHasOpsPerTxnPointAccesses) {
  OcbParameters p = YcsbParams();
  p.ycsb_ops_per_txn = 5;
  const ObjectBase base = ObjectBase::Generate(p);
  YcsbZipfWorkload gen(&base, desp::RandomStream(3));
  for (int i = 0; i < 200; ++i) {
    const Transaction txn = gen.Next();
    EXPECT_EQ(txn.kind, TransactionKind::kRandomAccess);
    ASSERT_EQ(txn.accesses.size(), 5u);
    EXPECT_EQ(txn.root, txn.accesses.front().oid);
    for (const ObjectAccess& a : txn.accesses) {
      EXPECT_LT(a.oid, base.NumObjects());
    }
  }
}

TEST(YcsbZipf, ReadFractionMatchesParameter) {
  OcbParameters p = YcsbParams();
  p.ycsb_read_pct = 0.75;
  const ObjectBase base = ObjectBase::Generate(p);
  YcsbZipfWorkload gen(&base, desp::RandomStream(5));
  uint64_t reads = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    for (const ObjectAccess& a : gen.Next().accesses) {
      ++total;
      if (!a.is_write) ++reads;
    }
  }
  EXPECT_NEAR(reads / double(total), 0.75, 0.02);
}

TEST(YcsbZipf, SkewConcentratesAccessesAndZeroSkewIsUniform) {
  const auto hottest_share = [](double skew) {
    OcbParameters p = YcsbParams();
    p.ycsb_skew = skew;
    const ObjectBase base = ObjectBase::Generate(p);
    YcsbZipfWorkload gen(&base, desp::RandomStream(9));
    std::map<Oid, uint64_t> counts;
    uint64_t total = 0;
    for (int i = 0; i < 3000; ++i) {
      for (const ObjectAccess& a : gen.Next().accesses) {
        ++counts[a.oid];
        ++total;
      }
    }
    uint64_t max = 0;
    for (const auto& [oid, n] : counts) max = std::max(max, n);
    return max / double(total);
  };
  const double uniform = hottest_share(0.0);
  const double skewed = hottest_share(1.2);
  // Uniform: ~1/500 per object.  A 1.2-skew Zipf puts a large multiple
  // of that on the hottest key.
  EXPECT_LT(uniform, 0.02);
  EXPECT_GT(skewed, uniform * 5);
}

TEST(YcsbZipf, DeterministicInSeedAndKindRequestIsIgnored) {
  const ObjectBase base = ObjectBase::Generate(YcsbParams());
  YcsbZipfWorkload a(&base, desp::RandomStream(21));
  YcsbZipfWorkload b(&base, desp::RandomStream(21));
  for (int i = 0; i < 50; ++i) {
    const Transaction ta = a.Next();
    const Transaction tb = b.NextOfKind(TransactionKind::kHierarchyTraversal);
    ASSERT_EQ(ta.accesses.size(), tb.accesses.size());
    EXPECT_EQ(tb.kind, TransactionKind::kRandomAccess);
    for (size_t j = 0; j < ta.accesses.size(); ++j) {
      EXPECT_EQ(ta.accesses[j].oid, tb.accesses[j].oid);
      EXPECT_EQ(ta.accesses[j].is_write, tb.accesses[j].is_write);
    }
  }
}

TEST(YcsbZipf, SystemSubstitutesTheSourceForTheCallersGenerator) {
  const ObjectBase base = ObjectBase::Generate(YcsbParams());
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 16;
  cfg.multiprogramming_level = 2;
  cfg.workload_source = core::WorkloadSourceKind::kYcsbZipf;
  core::VoodbSystem sys(cfg, &base, nullptr, 1);
  // The caller's generator is ignored; the ycsb stream drives the run.
  WorkloadGenerator unused(&base, desp::RandomStream(2));
  const core::PhaseMetrics m = sys.RunTransactions(unused, 40);
  EXPECT_EQ(m.transactions, 40u);
  EXPECT_GT(m.object_accesses, 0u);
  EXPECT_GT(m.sim_time_ms, 0.0);
}

}  // namespace
}  // namespace voodb::ocb
