/// \file test_lock_manager.cpp
/// \brief Tests for the 2PL lock manager with wait-die (paper §5
/// concurrency-control extension).
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "voodb/lock_manager.hpp"

namespace voodb::core {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  desp::Scheduler sched_;
  LockManager lm_{&sched_};
};

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  int grants = 0;
  lm_.Acquire(1, 10, LockMode::kShared, [&] { ++grants; }, [] { FAIL(); });
  lm_.Acquire(2, 10, LockMode::kShared, [&] { ++grants; }, [] { FAIL(); });
  sched_.Run();
  EXPECT_EQ(grants, 2);
  EXPECT_TRUE(lm_.Holds(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm_.Holds(2, 10, LockMode::kShared));
  EXPECT_EQ(lm_.stats().immediate_grants, 2u);
}

TEST_F(LockManagerTest, ExclusiveConflictsMakeOlderWait) {
  lm_.BeginTransaction(1, 1.0);  // older
  lm_.BeginTransaction(2, 2.0);  // younger
  bool young_granted = false;
  bool old_granted = false;
  lm_.Acquire(2, 10, LockMode::kExclusive, [&] { young_granted = true; },
              [] { FAIL(); });
  sched_.Run();
  ASSERT_TRUE(young_granted);
  // The older transaction may wait for the younger holder.
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { old_granted = true; },
              [] { FAIL() << "older transaction must not die"; });
  sched_.Run();
  EXPECT_FALSE(old_granted);
  EXPECT_EQ(lm_.stats().waits, 1u);
  // Release wakes the waiter.
  lm_.ReleaseAll(2);
  sched_.Run();
  EXPECT_TRUE(old_granted);
  EXPECT_TRUE(lm_.Holds(1, 10, LockMode::kExclusive));
}

TEST_F(LockManagerTest, YoungerRequesterDies) {
  lm_.BeginTransaction(1, 1.0);  // older
  lm_.BeginTransaction(2, 2.0);  // younger
  lm_.Acquire(1, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  bool died = false;
  lm_.Acquire(2, 10, LockMode::kShared, [] { FAIL() << "must die"; },
              [&] { died = true; });
  sched_.Run();
  EXPECT_TRUE(died);
  EXPECT_EQ(lm_.stats().deadlock_aborts, 1u);
}

TEST_F(LockManagerTest, ReacquiringHeldLockIsImmediate) {
  lm_.BeginTransaction(1, 1.0);
  int grants = 0;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { ++grants; }, [] { FAIL(); });
  lm_.Acquire(1, 10, LockMode::kShared, [&] { ++grants; }, [] { FAIL(); });
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { ++grants; }, [] { FAIL(); });
  sched_.Run();
  EXPECT_EQ(grants, 3);
  EXPECT_EQ(lm_.HeldLocks(1), 1u);
}

TEST_F(LockManagerTest, SharedToExclusiveUpgrade) {
  lm_.BeginTransaction(1, 1.0);
  lm_.Acquire(1, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  EXPECT_FALSE(lm_.Holds(1, 10, LockMode::kExclusive));
  bool upgraded = false;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; },
              [] { FAIL(); });
  sched_.Run();
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm_.Holds(1, 10, LockMode::kExclusive));
  EXPECT_EQ(lm_.stats().upgrades, 1u);
}

TEST_F(LockManagerTest, UpgradeConflictFollowsWaitDie) {
  lm_.BeginTransaction(1, 1.0);  // older
  lm_.BeginTransaction(2, 2.0);  // younger
  lm_.Acquire(1, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  lm_.Acquire(2, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  // The younger transaction upgrading against an older S-holder dies.
  bool died = false;
  lm_.Acquire(2, 10, LockMode::kExclusive, [] { FAIL(); },
              [&] { died = true; });
  sched_.Run();
  EXPECT_TRUE(died);
}

TEST_F(LockManagerTest, ReleaseAllWakesQueueInFifoOrder) {
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  lm_.BeginTransaction(3, 3.0);
  lm_.Acquire(3, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  std::vector<int> order;
  // Both older transactions wait (3 is youngest).
  lm_.Acquire(1, 10, LockMode::kShared, [&] { order.push_back(1); },
              [] { FAIL(); });
  lm_.Acquire(2, 10, LockMode::kShared, [&] { order.push_back(2); },
              [] { FAIL(); });
  sched_.Run();
  EXPECT_TRUE(order.empty());
  lm_.ReleaseAll(3);
  sched_.Run();
  // Both shared waiters wake together, FIFO.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(LockManagerTest, SharedWaitersDoNotStarveBehindExclusive) {
  // Ages: the S requester (1) is older than the X waiter (2) it queues
  // behind, so it may wait (a younger one would die — see below).
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  lm_.BeginTransaction(3, 3.0);
  lm_.Acquire(3, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  bool x_granted = false;
  bool s_granted = false;
  lm_.Acquire(2, 10, LockMode::kExclusive, [&] { x_granted = true; },
              [] { FAIL(); });
  lm_.Acquire(1, 10, LockMode::kShared, [&] { s_granted = true; },
              [] { FAIL(); });
  sched_.Run();
  // FIFO head is the X request; the S behind it must not jump the queue.
  EXPECT_FALSE(x_granted);
  EXPECT_FALSE(s_granted);
  lm_.ReleaseAll(3);
  sched_.Run();
  EXPECT_TRUE(x_granted);
  EXPECT_FALSE(s_granted);  // still behind the exclusive holder
  lm_.ReleaseAll(2);
  sched_.Run();
  EXPECT_TRUE(s_granted);
}

TEST_F(LockManagerTest, YoungerRequesterDiesBehindOlderQueuedExclusive) {
  // Queue positions are wait targets: a younger S request that would
  // park behind an older conflicting X waiter dies immediately (this is
  // what prevents cycles through FIFO ordering).
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  lm_.BeginTransaction(3, 3.0);
  lm_.Acquire(3, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  lm_.Acquire(1, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  bool died = false;
  lm_.Acquire(2, 10, LockMode::kShared, [] { FAIL(); },
              [&] { died = true; });
  sched_.Run();
  EXPECT_TRUE(died);
}

TEST_F(LockManagerTest, UpgradeBypassesParkedWaitersWhenSoleHolder) {
  // T1 (younger) is the sole S holder; T2 (older) parks an X request
  // behind it.  T1's S->X upgrade must jump the queue: upgrades are
  // granted ahead of parked waiters when the holders are compatible,
  // otherwise the upgrade and the waiter deadlock forever.
  lm_.BeginTransaction(1, 2.0);  // younger holder
  lm_.BeginTransaction(2, 1.0);  // older waiter
  lm_.Acquire(1, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  bool waiter_granted = false;
  lm_.Acquire(2, 10, LockMode::kExclusive, [&] { waiter_granted = true; },
              [] { FAIL() << "older waiter must not die"; });
  sched_.Run();
  ASSERT_FALSE(waiter_granted);
  bool upgraded = false;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; },
              [] { FAIL() << "sole-holder upgrade must not die"; });
  sched_.Run();
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm_.Holds(1, 10, LockMode::kExclusive));
  EXPECT_FALSE(waiter_granted);  // still parked behind the upgraded X
  lm_.ReleaseAll(1);
  sched_.Run();
  EXPECT_TRUE(waiter_granted);
  EXPECT_EQ(lm_.stats().upgrades, 1u);
}

TEST_F(LockManagerTest, ParkedUpgradeCompletesWhenOtherHolderReleases) {
  // Both hold S; the older one's upgrade parks at the queue FRONT and a
  // younger request behind it dies (the parked upgrade is a wait-die
  // target).  Releasing the other S holder completes the upgrade.
  lm_.BeginTransaction(1, 1.0);  // older, will upgrade
  lm_.BeginTransaction(2, 2.0);  // younger co-holder
  lm_.BeginTransaction(3, 3.0);  // youngest, dies behind the upgrade
  lm_.Acquire(1, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  lm_.Acquire(2, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  bool upgraded = false;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; },
              [] { FAIL() << "older upgrade must wait, not die"; });
  sched_.Run();
  EXPECT_FALSE(upgraded);
  EXPECT_EQ(lm_.stats().waits, 1u);
  bool died = false;
  lm_.Acquire(3, 10, LockMode::kShared, [] { FAIL(); }, [&] { died = true; });
  sched_.Run();
  EXPECT_TRUE(died);  // parked X upgrade ahead is older -> die
  lm_.ReleaseAll(2);
  sched_.Run();
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm_.Holds(1, 10, LockMode::kExclusive));
  EXPECT_EQ(lm_.stats().upgrades, 1u);
}

TEST_F(LockManagerTest, UpgradeDeathLeavesSharedHoldReleasable) {
  // Wait-die kills a younger upgrade attempt mid-transaction: the S hold
  // must survive the death (the TM aborts and releases explicitly), and
  // ReleaseAll must then clean it up and unblock the other upgrader.
  lm_.BeginTransaction(1, 1.0);  // older
  lm_.BeginTransaction(2, 2.0);  // younger
  lm_.Acquire(1, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  lm_.Acquire(2, 10, LockMode::kShared, [] {}, [] { FAIL(); });
  sched_.Run();
  bool died = false;
  lm_.Acquire(2, 10, LockMode::kExclusive, [] { FAIL(); },
              [&] { died = true; });
  sched_.Run();
  ASSERT_TRUE(died);
  EXPECT_TRUE(lm_.Holds(2, 10, LockMode::kShared));  // hold survives
  bool upgraded = false;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; },
              [] { FAIL(); });
  sched_.Run();
  EXPECT_FALSE(upgraded);  // still blocked by T2's S
  lm_.ReleaseAll(2);       // the TM's abort path
  sched_.Run();
  EXPECT_TRUE(upgraded);
  EXPECT_EQ(lm_.ActiveTransactions(), 1u);
  lm_.ReleaseAll(1);
  EXPECT_EQ(lm_.ActiveTransactions(), 0u);
}

TEST_F(LockManagerTest, ReRequestingHeldExclusiveNeverSamplesAWait) {
  // Re-requesting a held X (in either mode) is a pure re-grant: no new
  // holder entry, no wait-time sample, only the immediate-grant counter.
  lm_.BeginTransaction(1, 1.0);
  lm_.Acquire(1, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  const uint64_t samples_after_grant = lm_.stats().wait_times.count();
  int grants = 0;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { ++grants; }, [] { FAIL(); });
  lm_.Acquire(1, 10, LockMode::kShared, [&] { ++grants; }, [] { FAIL(); });
  sched_.Run();
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(lm_.HeldLocks(1), 1u);
  EXPECT_EQ(lm_.stats().immediate_grants, 3u);
  EXPECT_EQ(lm_.stats().wait_times.count(), samples_after_grant);
  EXPECT_EQ(lm_.stats().upgrades, 0u);
}

TEST_F(LockManagerTest, WaitTimeMeasured) {
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  lm_.Acquire(2, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  lm_.Acquire(1, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Schedule(25.0, [&] { lm_.ReleaseAll(2); });
  sched_.Run();
  EXPECT_DOUBLE_EQ(lm_.stats().wait_times.max(), 25.0);
}

TEST_F(LockManagerTest, ReleaseAllDropsQueuedRequests) {
  lm_.BeginTransaction(1, 1.0);
  lm_.BeginTransaction(2, 2.0);
  lm_.Acquire(2, 10, LockMode::kExclusive, [] {}, [] { FAIL(); });
  sched_.Run();
  bool granted = false;
  lm_.Acquire(1, 10, LockMode::kExclusive, [&] { granted = true; },
              [] { FAIL(); });
  sched_.Run();
  // Transaction 1 gives up (external abort) while waiting.
  lm_.ReleaseAll(1);
  lm_.ReleaseAll(2);
  sched_.Run();
  EXPECT_FALSE(granted);  // the stale waiter was dropped
  EXPECT_EQ(lm_.ActiveTransactions(), 0u);
}

TEST_F(LockManagerTest, UsageErrors) {
  EXPECT_THROW(lm_.Acquire(9, 1, LockMode::kShared, [] {}, [] {}),
               util::Error);
  lm_.BeginTransaction(5, 1.0);
  EXPECT_THROW(lm_.BeginTransaction(5, 2.0), util::Error);
  EXPECT_THROW(lm_.ReleaseAll(6), util::Error);
  EXPECT_EQ(lm_.HeldLocks(6), 0u);
}

TEST(LockModeNames, ToString) {
  EXPECT_STREQ(ToString(LockMode::kShared), "S");
  EXPECT_STREQ(ToString(LockMode::kExclusive), "X");
}

}  // namespace
}  // namespace voodb::core
