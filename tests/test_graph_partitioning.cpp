/// \file test_graph_partitioning.cpp
/// \brief Tests for the greedy graph-partitioning clustering policy.
#include <gtest/gtest.h>

#include <set>

#include "cluster/graph_partitioning.hpp"
#include "util/check.hpp"

namespace voodb::cluster {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters p;
  p.num_classes = 6;
  p.num_objects = 200;
  p.max_refs_per_class = 3;
  p.base_instance_size = 50;  // sizes 50..300
  p.seed = 101;
  return ocb::ObjectBase::Generate(p);
}

storage::Placement DefaultPlacement(const ocb::ObjectBase& base) {
  return storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kOptimizedSequential);
}

void Feed(GraphPartitioningPolicy& ggp, const std::vector<ocb::Oid>& seq) {
  ggp.OnTransactionStart();
  for (ocb::Oid oid : seq) ggp.OnObjectAccess(oid, false);
  ggp.OnTransactionEnd();
}

TEST(GraphPartitioningParameters, Validation) {
  GraphPartitioningParameters p;
  p.Validate();
  GraphPartitioningParameters bad = p;
  bad.min_edge_weight = 0;
  EXPECT_THROW(bad.Validate(), util::Error);
}

TEST(GraphPartitioning, EdgesAreUndirected) {
  GraphPartitioningPolicy ggp;
  Feed(ggp, {1, 2});
  Feed(ggp, {2, 1});
  EXPECT_EQ(ggp.TrackedEdges(), 1u);  // both directions, one edge
}

TEST(GraphPartitioning, RepeatedCoAccessFormsOnePartition) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningPolicy ggp;
  for (int i = 0; i < 3; ++i) Feed(ggp, {5, 6, 7});
  const ClusteringOutcome outcome = ggp.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  ASSERT_EQ(outcome.NumClusters(), 1u);
  EXPECT_EQ(std::set<ocb::Oid>(outcome.clusters[0].begin(),
                               outcome.clusters[0].end()),
            (std::set<ocb::Oid>{5, 6, 7}));
}

TEST(GraphPartitioning, ByteBudgetBoundsPartitions) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningParameters params;
  params.partition_byte_budget = 400;  // only a few small objects fit
  GraphPartitioningPolicy ggp(params);
  std::vector<ocb::Oid> chain;
  for (ocb::Oid o = 0; o < 30; ++o) chain.push_back(o);
  for (int i = 0; i < 3; ++i) Feed(ggp, chain);
  const ClusteringOutcome outcome = ggp.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  for (const auto& cluster : outcome.clusters) {
    uint64_t bytes = 0;
    for (ocb::Oid oid : cluster) bytes += base.Object(oid).size;
    EXPECT_LE(bytes, 400u);
  }
}

TEST(GraphPartitioning, DefaultBudgetIsThePageSize) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningPolicy ggp;  // budget 0 -> page size (1024)
  std::vector<ocb::Oid> chain;
  for (ocb::Oid o = 0; o < 40; ++o) chain.push_back(o);
  for (int i = 0; i < 3; ++i) Feed(ggp, chain);
  const ClusteringOutcome outcome = ggp.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  for (const auto& cluster : outcome.clusters) {
    uint64_t bytes = 0;
    for (ocb::Oid oid : cluster) bytes += base.Object(oid).size;
    EXPECT_LE(bytes, 1024u);
  }
}

TEST(GraphPartitioning, HeavierEdgesMergeFirst) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningParameters params;
  // Objects 0, 6, 12 are class-0 instances of 50 B each; a 120 B budget
  // fits exactly two of them.
  params.partition_byte_budget = 120;
  GraphPartitioningPolicy ggp(params);
  // Edge {0,6} much heavier than {6,12}: 0-6 must merge, 12 left out.
  for (int i = 0; i < 10; ++i) Feed(ggp, {0, 6});
  for (int i = 0; i < 2; ++i) Feed(ggp, {6, 12});
  const ClusteringOutcome outcome = ggp.Recluster(base, pl);
  ASSERT_TRUE(outcome.reorganized);
  bool found = false;
  for (const auto& cluster : outcome.clusters) {
    const std::set<ocb::Oid> members(cluster.begin(), cluster.end());
    if (members.count(0)) {
      found = true;
      EXPECT_TRUE(members.count(6));
      EXPECT_FALSE(members.count(12));
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphPartitioning, WeakEdgesFiltered) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningPolicy ggp;  // min edge weight 2
  Feed(ggp, {10, 11, 12});      // all edges weight 1
  const ClusteringOutcome outcome = ggp.Recluster(base, pl);
  EXPECT_FALSE(outcome.reorganized);
}

TEST(GraphPartitioning, TriggerRespectsPeriod) {
  GraphPartitioningParameters params;
  params.observation_period = 3;
  GraphPartitioningPolicy ggp(params);
  Feed(ggp, {1, 2});
  Feed(ggp, {1, 2});
  EXPECT_FALSE(ggp.ShouldTrigger());
  Feed(ggp, {1, 2});
  EXPECT_TRUE(ggp.ShouldTrigger());
}

TEST(GraphPartitioning, ReclusterConsumesStatistics) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  GraphPartitioningPolicy ggp;
  for (int i = 0; i < 3; ++i) Feed(ggp, {1, 2, 3});
  ggp.Recluster(base, pl);
  EXPECT_EQ(ggp.TrackedEdges(), 0u);
  EXPECT_FALSE(ggp.Recluster(base, pl).reorganized);
}

TEST(GraphPartitioning, Deterministic) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = DefaultPlacement(base);
  auto run = [&] {
    GraphPartitioningPolicy ggp;
    for (int i = 0; i < 3; ++i) {
      Feed(ggp, {1, 2, 3});
      Feed(ggp, {20, 21});
    }
    return ggp.Recluster(base, pl).clusters;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace voodb::cluster
