/// \file test_cluster_policy.cpp
/// \brief Tests for the clustering-policy interface helpers.
#include <gtest/gtest.h>

#include <set>

#include "cluster/policy.hpp"
#include "util/check.hpp"

namespace voodb::cluster {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters p;
  p.num_classes = 6;
  p.num_objects = 120;
  p.max_refs_per_class = 3;
  p.seed = 9;
  return ocb::ObjectBase::Generate(p);
}

TEST(NoClustering, IsInert) {
  NoClustering none;
  EXPECT_STREQ(none.name(), "NONE");
  none.OnObjectAccess(3, false);
  EXPECT_FALSE(none.ShouldTrigger());
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  const ClusteringOutcome outcome = none.Recluster(base, pl);
  EXPECT_FALSE(outcome.reorganized);
  EXPECT_EQ(outcome.NumClusters(), 0u);
  EXPECT_DOUBLE_EQ(outcome.MeanClusterSize(), 0.0);
}

TEST(FinalizeOutcome, EmptyClustersMeanNoReorganization) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  const ClusteringOutcome outcome = FinalizeOutcome({}, base, pl);
  EXPECT_FALSE(outcome.reorganized);
  EXPECT_TRUE(outcome.new_order.empty());
  EXPECT_TRUE(outcome.moved_objects.empty());
}

TEST(FinalizeOutcome, BuildsPermutationWithClustersFirst) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  std::vector<std::vector<ocb::Oid>> clusters = {{10, 11, 12}, {50, 40}};
  const ClusteringOutcome outcome =
      FinalizeOutcome(std::move(clusters), base, pl);
  EXPECT_TRUE(outcome.reorganized);
  EXPECT_EQ(outcome.NumClusters(), 2u);
  EXPECT_DOUBLE_EQ(outcome.MeanClusterSize(), 2.5);
  // new_order is a permutation of all OIDs, clusters first.
  ASSERT_EQ(outcome.new_order.size(), base.NumObjects());
  EXPECT_EQ(outcome.new_order[0], 10u);
  EXPECT_EQ(outcome.new_order[4], 40u);
  std::set<ocb::Oid> unique(outcome.new_order.begin(),
                            outcome.new_order.end());
  EXPECT_EQ(unique.size(), base.NumObjects());
  // moved = exactly the clustered objects, in cluster order.
  EXPECT_EQ(outcome.moved_objects,
            (std::vector<ocb::Oid>{10, 11, 12, 50, 40}));
}

TEST(FinalizeOutcome, RejectsSingletonClusters) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  EXPECT_THROW(FinalizeOutcome({{7}}, base, pl), util::Error);
}

TEST(FinalizeOutcome, RejectsOverlappingClusters) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  EXPECT_THROW(FinalizeOutcome({{1, 2}, {2, 3}}, base, pl), util::Error);
}

TEST(FinalizeOutcome, RejectsOutOfRangeOids) {
  const ocb::ObjectBase base = SmallBase();
  const storage::Placement pl = storage::Placement::Build(
      base, 1024, storage::PlacementPolicy::kSequential);
  EXPECT_THROW(FinalizeOutcome({{1, 99999}}, base, pl), util::Error);
}

}  // namespace
}  // namespace voodb::cluster
