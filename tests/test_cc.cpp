/// \file test_cc.cpp
/// \brief Tests for the pluggable concurrency-control subsystem (src/cc):
/// per-protocol unit semantics, pooled transaction tables, the factory,
/// and end-to-end VOODB runs under every protocol with determinism.
#include <gtest/gtest.h>

#include "cc/mvcc.hpp"
#include "cc/occ.hpp"
#include "cc/protocol.hpp"
#include "cc/two_phase.hpp"
#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "voodb/lock_manager.hpp"
#include "voodb/system.hpp"

namespace voodb::cc {
namespace {

// --- Interface / factory -----------------------------------------------------

TEST(CcProtocol, FactoryBuildsEveryKind) {
  desp::Scheduler sched;
  for (const ProtocolKind kind :
       {ProtocolKind::kNoWait, ProtocolKind::kWaitDie,
        ProtocolKind::kDeadlockDetect, ProtocolKind::kMvcc,
        ProtocolKind::kOcc}) {
    const auto protocol = MakeProtocol(kind, &sched);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->kind(), kind);
    EXPECT_EQ(protocol->ActiveTransactions(), 0u);
  }
}

TEST(CcProtocol, KindNames) {
  EXPECT_STREQ(ToString(ProtocolKind::kNoWait), "no_wait");
  EXPECT_STREQ(ToString(ProtocolKind::kWaitDie), "wait_die");
  EXPECT_STREQ(ToString(ProtocolKind::kDeadlockDetect), "deadlock_detect");
  EXPECT_STREQ(ToString(ProtocolKind::kMvcc), "mvcc");
  EXPECT_STREQ(ToString(ProtocolKind::kOcc), "occ");
}

TEST(CcProtocol, OnlyWaitDieExposesALockManager) {
  desp::Scheduler sched;
  for (const ProtocolKind kind :
       {ProtocolKind::kNoWait, ProtocolKind::kWaitDie,
        ProtocolKind::kDeadlockDetect, ProtocolKind::kMvcc,
        ProtocolKind::kOcc}) {
    const auto protocol = MakeProtocol(kind, &sched);
    if (kind == ProtocolKind::kWaitDie) {
      EXPECT_NE(protocol->lock_manager(), nullptr);
    } else {
      EXPECT_EQ(protocol->lock_manager(), nullptr);
    }
  }
}

// --- TxnTable pooling --------------------------------------------------------

struct PooledState {
  std::vector<int> payload;
  void Recycle() { payload.clear(); }
};

TEST(CcTxnTable, CapacityBoundedByConcurrencyNotChurn) {
  TxnTable<PooledState> table;
  // 1000 sequential transactions, at most 3 concurrent: the slab must
  // stop growing at the concurrency peak.
  for (uint64_t t = 0; t < 1000; t += 3) {
    table.Begin(t).payload.push_back(1);
    table.Begin(t + 1).payload.push_back(2);
    table.Begin(t + 2);
    table.End(t);
    table.End(t + 1);
    table.End(t + 2);
  }
  EXPECT_EQ(table.active(), 0u);
  EXPECT_LE(table.capacity(), 3u);
}

TEST(CcTxnTable, RecycleClearsState) {
  TxnTable<PooledState> table;
  table.Begin(1).payload.assign(10, 7);
  table.End(1);
  EXPECT_TRUE(table.Begin(2).payload.empty());
  table.End(2);
}

// --- 2PL no-wait -------------------------------------------------------------

TEST(CcNoWait, SharedCompatibleExclusiveAbortsImmediately) {
  desp::Scheduler sched;
  NoWait2pl cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  int granted = 0;
  int aborted = 0;
  cc.Access(1, 10, false, [&] { ++granted; }, [] { FAIL(); });
  cc.Access(2, 10, false, [&] { ++granted; }, [] { FAIL(); });
  sched.Run();
  EXPECT_EQ(granted, 2);
  // A writer against two readers dies on the spot — no queue exists.
  cc.Begin(3, 3);
  cc.Access(3, 10, true, [] { FAIL() << "no-wait must not grant"; },
            [&] { ++aborted; });
  sched.Run();
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(cc.stats().aborts_no_wait, 1u);
  cc.Abort(3);
  cc.Commit(1);
  cc.Commit(2);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcNoWait, ReleaseMakesTheObjectGrantableAgain) {
  desp::Scheduler sched;
  NoWait2pl cc(&sched);
  cc.Begin(1, 1);
  cc.Access(1, 10, true, [] {}, [] { FAIL(); });
  sched.Run();
  cc.Commit(1);
  cc.Begin(2, 2);
  bool ok = false;
  cc.Access(2, 10, true, [&] { ok = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_TRUE(ok);
  cc.Commit(2);
}

TEST(CcNoWait, UpgradeOfOwnSharedLockSucceedsWhenSoleHolder) {
  desp::Scheduler sched;
  NoWait2pl cc(&sched);
  cc.Begin(1, 1);
  int granted = 0;
  cc.Access(1, 10, false, [&] { ++granted; }, [] { FAIL(); });
  cc.Access(1, 10, true, [&] { ++granted; }, [] { FAIL(); });
  sched.Run();
  EXPECT_EQ(granted, 2);
  cc.Commit(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

// --- 2PL wait-die (delegation) ----------------------------------------------

TEST(CcWaitDie, MatchesLockManagerSemantics) {
  desp::Scheduler sched;
  WaitDie2pl cc(&sched);
  cc.Begin(1, 1);  // older
  cc.Begin(2, 2);  // younger
  bool young_granted = false;
  cc.Access(2, 10, true, [&] { young_granted = true; }, [] { FAIL(); });
  sched.Run();
  ASSERT_TRUE(young_granted);
  // Older waits (wait-die lets the senior queue)...
  bool old_granted = false;
  cc.Access(1, 10, true, [&] { old_granted = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_FALSE(old_granted);
  // ...and a younger conflicting requester dies.
  cc.Begin(3, 3);
  bool died = false;
  cc.Access(3, 10, false, [] { FAIL(); }, [&] { died = true; });
  sched.Run();
  EXPECT_TRUE(died);
  cc.Abort(3);
  cc.Commit(2);
  sched.Run();
  EXPECT_TRUE(old_granted);
  cc.Commit(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
  ASSERT_NE(cc.lock_manager(), nullptr);
  EXPECT_EQ(cc.lock_manager()->stats().deadlock_aborts, 1u);
  EXPECT_EQ(cc.lock_manager()->stats().waits, 1u);
}

// --- 2PL deadlock detection --------------------------------------------------

TEST(CcDeadlockDetect, PlainConflictWaitsInsteadOfDying) {
  desp::Scheduler sched;
  DeadlockDetect2pl cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  cc.Access(1, 10, true, [] {}, [] { FAIL(); });
  sched.Run();
  bool granted = false;
  // A younger waiter would die under wait-die; here it just waits.
  cc.Access(2, 10, true, [&] { granted = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_FALSE(granted);
  EXPECT_EQ(cc.stats().waits, 1u);
  EXPECT_EQ(cc.stats().TotalAborts(), 0u);
  cc.Commit(1);
  sched.Run();
  EXPECT_TRUE(granted);
  cc.Commit(2);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcDeadlockDetect, TwoTxnCycleAbortsTheClosingRequester) {
  desp::Scheduler sched;
  DeadlockDetect2pl cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  // T1 holds A, T2 holds B.
  cc.Access(1, 10, true, [] {}, [] { FAIL(); });
  cc.Access(2, 20, true, [] {}, [] { FAIL(); });
  sched.Run();
  // T1 -> B parks (no cycle yet).
  bool t1_b = false;
  cc.Access(1, 20, true, [&] { t1_b = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_FALSE(t1_b);
  // T2 -> A would close the cycle: T2 must be the victim.
  bool t2_died = false;
  cc.Access(2, 10, true, [] { FAIL() << "cycle must abort"; },
            [&] { t2_died = true; });
  sched.Run();
  EXPECT_TRUE(t2_died);
  EXPECT_EQ(cc.stats().aborts_deadlock, 1u);
  // Aborting T2 releases B and wakes T1.
  cc.Abort(2);
  sched.Run();
  EXPECT_TRUE(t1_b);
  cc.Commit(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcDeadlockDetect, ThreeTxnCycleDetectedThroughTheGraph) {
  desp::Scheduler sched;
  DeadlockDetect2pl cc(&sched);
  for (uint64_t t = 1; t <= 3; ++t) cc.Begin(t, t);
  cc.Access(1, 10, true, [] {}, [] { FAIL(); });
  cc.Access(2, 20, true, [] {}, [] { FAIL(); });
  cc.Access(3, 30, true, [] {}, [] { FAIL(); });
  sched.Run();
  // T1 -> B, T2 -> C park; T3 -> A closes the 3-cycle.
  cc.Access(1, 20, true, [] {}, [] { FAIL(); });
  sched.Run();
  cc.Access(2, 30, true, [] {}, [] { FAIL(); });
  sched.Run();
  bool t3_died = false;
  cc.Access(3, 10, true, [] { FAIL(); }, [&] { t3_died = true; });
  sched.Run();
  EXPECT_TRUE(t3_died);
  cc.Abort(3);
  cc.Abort(2);
  cc.Abort(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcDeadlockDetect, UpgradeDeadlockBetweenTwoReaders) {
  desp::Scheduler sched;
  DeadlockDetect2pl cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  cc.Access(1, 10, false, [] {}, [] { FAIL(); });
  cc.Access(2, 10, false, [] {}, [] { FAIL(); });
  sched.Run();
  // T1's upgrade parks on T2's S hold; T2's upgrade would deadlock.
  bool t1_x = false;
  cc.Access(1, 10, true, [&] { t1_x = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_FALSE(t1_x);
  bool t2_died = false;
  cc.Access(2, 10, true, [] { FAIL(); }, [&] { t2_died = true; });
  sched.Run();
  EXPECT_TRUE(t2_died);
  cc.Abort(2);
  sched.Run();
  EXPECT_TRUE(t1_x);
  cc.Commit(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

// --- MVCC --------------------------------------------------------------------

TEST(CcMvcc, ReadersNeverBlockOnWriteIntents) {
  desp::Scheduler sched;
  Mvcc cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  bool wrote = false;
  bool read = false;
  cc.Access(1, 10, true, [&] { wrote = true; }, [] { FAIL(); });
  cc.Access(2, 10, false, [&] { read = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(read);
  EXPECT_EQ(cc.stats().waits, 0u);
  EXPECT_TRUE(cc.ValidateCommit(1));
  cc.Commit(1);
  EXPECT_TRUE(cc.ValidateCommit(2));
  cc.Commit(2);
}

TEST(CcMvcc, ConcurrentWritersConflictImmediately) {
  desp::Scheduler sched;
  Mvcc cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  cc.Access(1, 10, true, [] {}, [] { FAIL(); });
  sched.Run();
  bool died = false;
  cc.Access(2, 10, true, [] { FAIL() << "second intent must conflict"; },
            [&] { died = true; });
  sched.Run();
  EXPECT_TRUE(died);
  EXPECT_EQ(cc.stats().aborts_write_conflict, 1u);
  cc.Abort(2);
  cc.Commit(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcMvcc, FirstCommitterWinsValidation) {
  desp::Scheduler sched;
  Mvcc cc(&sched);
  cc.Begin(1, 1);  // snapshot before T2's commit
  cc.Begin(2, 2);
  cc.Access(2, 10, true, [] {}, [] { FAIL(); });
  sched.Run();
  EXPECT_TRUE(cc.ValidateCommit(2));
  cc.Commit(2);  // installs a version newer than T1's snapshot
  // T1 now writes the same object: its intent is free (T2 released it)
  // but commit-time validation must fail — first committer won.
  bool wrote = false;
  cc.Access(1, 10, true, [&] { wrote = true; }, [] { FAIL(); });
  sched.Run();
  EXPECT_TRUE(wrote);
  EXPECT_FALSE(cc.ValidateCommit(1));
  EXPECT_EQ(cc.stats().validation_failures, 1u);
  cc.Abort(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcMvcc, VersionsPrunedBelowOldestSnapshot) {
  desp::Scheduler sched;
  Mvcc cc(&sched);
  // Sequential committed writes to one object: with no concurrent
  // readers the chain must stay short (pruned to the horizon).
  for (uint64_t t = 1; t <= 20; ++t) {
    cc.Begin(t, t);
    cc.Access(t, 10, true, [] {}, [] { FAIL(); });
    sched.Run();
    ASSERT_TRUE(cc.ValidateCommit(t));
    cc.Commit(t);
  }
  EXPECT_GT(cc.stats().versions_installed, 0u);
  EXPECT_GT(cc.stats().versions_pruned, 0u);
  EXPECT_LE(cc.VersionChainLength(10), 2u);
}

// --- OCC ---------------------------------------------------------------------

TEST(CcOcc, AccessesAlwaysGrantImmediately) {
  desp::Scheduler sched;
  Occ cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  int granted = 0;
  cc.Access(1, 10, true, [&] { ++granted; }, [] { FAIL(); });
  cc.Access(2, 10, true, [&] { ++granted; }, [] { FAIL(); });
  sched.Run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(cc.stats().waits, 0u);
  cc.Abort(1);
  cc.Abort(2);
}

TEST(CcOcc, BackwardValidationCatchesStaleReads) {
  desp::Scheduler sched;
  Occ cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  // T1 reads A; T2 writes A and commits first.
  cc.Access(1, 10, false, [] {}, [] { FAIL(); });
  cc.Access(2, 10, true, [] {}, [] { FAIL(); });
  sched.Run();
  ASSERT_TRUE(cc.ValidateCommit(2));
  cc.Commit(2);
  // T1's read overlaps a write set committed after its start: abort.
  EXPECT_FALSE(cc.ValidateCommit(1));
  EXPECT_EQ(cc.stats().validation_failures, 1u);
  cc.Abort(1);
  EXPECT_EQ(cc.ActiveTransactions(), 0u);
}

TEST(CcOcc, DisjointSetsCommitFreely) {
  desp::Scheduler sched;
  Occ cc(&sched);
  cc.Begin(1, 1);
  cc.Begin(2, 2);
  cc.Access(1, 10, false, [] {}, [] { FAIL(); });
  cc.Access(2, 20, true, [] {}, [] { FAIL(); });
  sched.Run();
  EXPECT_TRUE(cc.ValidateCommit(2));
  cc.Commit(2);
  EXPECT_TRUE(cc.ValidateCommit(1));
  cc.Commit(1);
  EXPECT_EQ(cc.stats().validation_failures, 0u);
}

TEST(CcOcc, CommittedLogTruncatedToActiveHorizon) {
  desp::Scheduler sched;
  Occ cc(&sched);
  for (uint64_t t = 1; t <= 100; ++t) {
    cc.Begin(t, t);
    cc.Access(t, 10 + (t % 7), true, [] {}, [] { FAIL(); });
    sched.Run();
    ASSERT_TRUE(cc.ValidateCommit(t));
    cc.Commit(t);
  }
  // No active transactions: the whole log is below the horizon.
  EXPECT_LE(cc.RetainedCommits(), 1u);
}

// --- End-to-end: every protocol inside the VOODB system ---------------------

ocb::OcbParameters ContendedWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 300;
  p.max_refs_per_class = 3;
  p.base_instance_size = 60;
  p.p_update = 0.5;
  p.root_region = 6;
  p.seed = 111;
  return p;
}

core::VoodbConfig ProtocolConfig(ProtocolKind kind) {
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 128;
  cfg.multiprogramming_level = 8;
  cfg.num_users = 8;
  cfg.use_lock_manager = true;
  cfg.cc_protocol = kind;
  cfg.get_lock_ms = 0.2;
  cfg.release_lock_ms = 0.2;
  return cfg;
}

TEST(CcSystem, EveryProtocolCompletesAContendedRun) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  for (const ProtocolKind kind :
       {ProtocolKind::kNoWait, ProtocolKind::kWaitDie,
        ProtocolKind::kDeadlockDetect, ProtocolKind::kMvcc,
        ProtocolKind::kOcc}) {
    core::VoodbSystem sys(ProtocolConfig(kind), &base, nullptr, 13);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
    const core::PhaseMetrics m = sys.RunTransactions(gen, 120);
    EXPECT_EQ(m.transactions, 120u) << ToString(kind);
    const cc::Protocol* protocol = sys.transaction_manager().cc_protocol();
    ASSERT_NE(protocol, nullptr) << ToString(kind);
    EXPECT_EQ(protocol->kind(), kind);
    // Everything released / forgotten when the run drains.
    EXPECT_EQ(protocol->ActiveTransactions(), 0u) << ToString(kind);
    EXPECT_EQ(sys.transaction_manager().inflight_pool_live(), 0u)
        << ToString(kind);
    // Restart accounting agrees between the TM and the protocol.
    if (kind == ProtocolKind::kWaitDie) {
      ASSERT_NE(protocol->lock_manager(), nullptr);
      EXPECT_EQ(protocol->lock_manager()->stats().deadlock_aborts,
                m.transaction_restarts);
    } else {
      EXPECT_EQ(protocol->stats().TotalAborts(), m.transaction_restarts)
          << ToString(kind);
    }
  }
}

TEST(CcSystem, WaitDieIsTheDefaultProtocol) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::VoodbConfig cfg = ProtocolConfig(ProtocolKind::kWaitDie);
  core::VoodbSystem sys(cfg, &base, nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  sys.RunTransactions(gen, 60);
  // The pre-subsystem accessor still works: the wrapped LockManager is
  // reachable through the TM exactly as before the refactor.
  EXPECT_NE(sys.transaction_manager().lock_manager(), nullptr);
}

TEST(CcSystem, RunsAreDeterministicPerProtocol) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  for (const ProtocolKind kind :
       {ProtocolKind::kNoWait, ProtocolKind::kDeadlockDetect,
        ProtocolKind::kMvcc, ProtocolKind::kOcc}) {
    core::PhaseMetrics runs[2];
    for (int r = 0; r < 2; ++r) {
      core::VoodbSystem sys(ProtocolConfig(kind), &base, nullptr, 13);
      ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
      runs[r] = sys.RunTransactions(gen, 120);
    }
    EXPECT_EQ(runs[0].transaction_restarts, runs[1].transaction_restarts)
        << ToString(kind);
    EXPECT_EQ(runs[0].total_ios, runs[1].total_ios) << ToString(kind);
    EXPECT_EQ(runs[0].sim_time_ms, runs[1].sim_time_ms) << ToString(kind);
  }
}

TEST(CcSystem, InFlightPoolBoundedByConcurrency) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::VoodbSystem sys(ProtocolConfig(ProtocolKind::kWaitDie), &base,
                        nullptr, 13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  sys.RunTransactions(gen, 100);
  const size_t after_first = sys.transaction_manager().inflight_pool_capacity();
  EXPECT_LE(after_first, 8u);  // num_users
  sys.RunTransactions(gen, 100);
  // Steady state: running more transactions allocates no new slots.
  EXPECT_EQ(sys.transaction_manager().inflight_pool_capacity(), after_first);
  EXPECT_EQ(sys.transaction_manager().inflight_pool_live(), 0u);
}

TEST(CcSystem, MetricsExposeCcCounters) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ContendedWorkload());
  core::VoodbSystem sys(ProtocolConfig(ProtocolKind::kMvcc), &base, nullptr,
                        13);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(13));
  sys.RunTransactions(gen, 120);
  const obs::MetricSnapshot snapshot = sys.metric_registry().Snapshot();
  ASSERT_EQ(snapshot.counters.count("cc.begins"), 1u);
  EXPECT_GT(snapshot.counters.at("cc.begins"), 0u);
  ASSERT_EQ(snapshot.counters.count("cc.commits"), 1u);
  EXPECT_GT(snapshot.counters.at("cc.commits"), 0u);
  EXPECT_EQ(snapshot.counters.count("cc.aborts.write_conflict"), 1u);
  EXPECT_EQ(snapshot.histograms.count("cc.version_chain"), 1u);
}

}  // namespace
}  // namespace voodb::cc
