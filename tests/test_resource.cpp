/// \file test_resource.cpp
/// \brief Tests for DESP passive resources (capacity, queueing, stats).
#include <gtest/gtest.h>

#include <vector>

#include "desp/resource.hpp"
#include "desp/scheduler.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(Resource, GrantsUpToCapacity) {
  Scheduler s;
  Resource r(&s, "r", 2);
  int granted = 0;
  for (int i = 0; i < 3; ++i) {
    r.Acquire([&] { ++granted; });
  }
  s.Run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(r.busy(), 2u);
  EXPECT_EQ(r.QueueLength(), 1u);
  r.Release();
  s.Run();
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(r.QueueLength(), 0u);
}

TEST(Resource, FifoOrder) {
  Scheduler s;
  Resource r(&s, "r", 1, QueueDiscipline::kFifo);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    r.Acquire([&, i] {
      order.push_back(i);
      s.Schedule(1.0, [&r] { r.Release(); });
    });
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, LifoOrder) {
  Scheduler s;
  Resource r(&s, "r", 1, QueueDiscipline::kLifo);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    r.Acquire([&, i] {
      order.push_back(i);
      s.Schedule(1.0, [&r] { r.Release(); });
    });
  }
  s.Run();
  // 0 grabs the server; the queue (1,2,3) is served LIFO.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(Resource, PriorityOrder) {
  Scheduler s;
  Resource r(&s, "r", 1, QueueDiscipline::kPriority);
  std::vector<int> order;
  auto hold = [&](int id, double priority) {
    r.Acquire(
        [&, id] {
          order.push_back(id);
          s.Schedule(1.0, [&r] { r.Release(); });
        },
        priority);
  };
  hold(0, 0.0);  // served immediately
  hold(1, 1.0);
  hold(2, 5.0);
  hold(3, 1.0);
  s.Run();
  // Queue served by priority desc, FIFO among equals: 2, 1, 3.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(Resource, AcquireForHoldsForServiceTime) {
  Scheduler s;
  Resource r(&s, "r", 1);
  std::vector<double> completion;
  for (int i = 0; i < 3; ++i) {
    r.AcquireFor(10.0, [&] { completion.push_back(s.Now()); });
  }
  s.Run();
  // Serialized on a capacity-1 server: 10, 20, 30.
  ASSERT_EQ(completion.size(), 3u);
  EXPECT_DOUBLE_EQ(completion[0], 10.0);
  EXPECT_DOUBLE_EQ(completion[1], 20.0);
  EXPECT_DOUBLE_EQ(completion[2], 30.0);
}

TEST(Resource, UtilizationAndQueueStats) {
  Scheduler s;
  Resource r(&s, "r", 1);
  r.AcquireFor(5.0, [] {});
  s.Run();
  s.Schedule(5.0, [] {});  // idle until t=10
  s.Run();
  // Busy 5 of 10 time units.
  EXPECT_NEAR(r.Utilization(), 0.5, 1e-9);
  EXPECT_EQ(r.Grants(), 1u);
}

TEST(Resource, WaitTimesMeasured) {
  Scheduler s;
  Resource r(&s, "r", 1);
  r.AcquireFor(4.0, [] {});
  r.AcquireFor(4.0, [] {});  // waits 4
  s.Run();
  EXPECT_EQ(r.WaitTimes().count(), 2u);
  EXPECT_DOUBLE_EQ(r.WaitTimes().max(), 4.0);
  EXPECT_DOUBLE_EQ(r.WaitTimes().min(), 0.0);
}

TEST(Resource, ReleaseWithoutHoldThrows) {
  Scheduler s;
  Resource r(&s, "r", 1);
  EXPECT_THROW(r.Release(), util::Error);
}

TEST(Resource, RejectsBadConstruction) {
  Scheduler s;
  EXPECT_THROW(Resource(&s, "bad", 0), util::Error);
}

TEST(Resource, MmOneQueueSanity) {
  // M/M/1-ish sanity: with utilization ~0.5 the mean queue stays small,
  // with utilization ~0.95 it grows.  Deterministic arrival/service here:
  // arrivals every 2.0, service 1.0 (rho = 0.5) -> queue stays ~0.
  Scheduler s;
  Resource r(&s, "r", 1);
  for (int i = 0; i < 100; ++i) {
    s.Schedule(2.0 * i, [&] { r.AcquireFor(1.0, [] {}); });
  }
  s.Run();
  EXPECT_LT(r.MeanQueueLength(), 0.01);
  EXPECT_NEAR(r.Utilization(), 0.5, 0.05);
}

TEST(Resource, QueueBuildsUpWhenOverloaded) {
  Scheduler s;
  Resource r(&s, "r", 1);
  for (int i = 0; i < 50; ++i) {
    s.Schedule(1.0 * i, [&] { r.AcquireFor(2.0, [] {}); });
  }
  s.Run();
  // Arrival rate 1, service rate 0.5: queue grows linearly.
  EXPECT_GT(r.MeanQueueLength(), 5.0);
  EXPECT_GT(r.WaitTimes().max(), 20.0);
}

}  // namespace
}  // namespace voodb::desp
