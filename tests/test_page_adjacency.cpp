/// \file test_page_adjacency.cpp
/// \brief Dedicated unit tests for storage::PageAdjacency and
/// util::IdSpan edge cases (both previously covered only indirectly
/// through the Texas emulator and the VM object manager).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ocb/object_base.hpp"
#include "storage/page_adjacency.hpp"
#include "storage/placement.hpp"
#include "util/check.hpp"
#include "util/span.hpp"

namespace voodb::storage {
namespace {

ocb::ObjectBase SmallBase() {
  ocb::OcbParameters params;
  params.num_classes = 6;
  params.num_objects = 400;
  params.max_refs_per_class = 5;
  return ocb::ObjectBase::Generate(params);
}

/// Page-sized instances over a sparse schema (NC > NO, so many
/// reference slots dangle) with a minimal locality window: pages whose
/// objects' references all dangle produce empty rows, pages reaching
/// exactly one neighbour produce single-element rows.
ocb::ObjectBase EdgeShapeBase() {
  ocb::OcbParameters params;
  params.num_classes = 200;
  params.num_objects = 120;
  params.max_refs_per_class = 2;
  params.base_instance_size = 3600;
  params.class_size_growth = 0;
  params.object_locality = 1;
  return ocb::ObjectBase::Generate(params);
}

/// Brute-force reference adjacency of one page: the deduplicated sorted
/// set of pages holding objects referenced from `page`, excluding the
/// page itself.
std::vector<PageId> ExpectedRow(const ocb::ObjectBase& base,
                                const Placement& placement, PageId page) {
  std::set<PageId> pages;
  for (const ocb::Oid oid : placement.ObjectsOn(page)) {
    for (const ocb::Oid ref : base.References(oid)) {
      if (ref == ocb::kNullOid) continue;
      const PageSpan span = placement.SpanOf(ref);
      for (uint32_t i = 0; i < span.count; ++i) {
        if (span.first + i != page) pages.insert(span.first + i);
      }
    }
  }
  return {pages.begin(), pages.end()};
}

/// Compares every row of the CSR index against the brute-force
/// recomputation, checking sortedness, deduplication and
/// self-exclusion; returns (empty rows, single-element rows).
std::pair<size_t, size_t> CheckAllRows(const ocb::ObjectBase& base,
                                       const Placement& placement) {
  PageAdjacency adjacency;
  adjacency.Rebuild(base, placement);
  EXPECT_EQ(adjacency.NumPages(), placement.NumPages());
  size_t empty_rows = 0;
  size_t single_rows = 0;
  for (PageId p = 0; p < adjacency.NumPages(); ++p) {
    const std::vector<PageId> expected = ExpectedRow(base, placement, p);
    const PageIdSpan row = adjacency.RowOf(p);
    EXPECT_EQ(row.size(), expected.size()) << "page " << p;
    if (row.size() == expected.size()) {
      EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()))
          << "page " << p;
    }
    // Rows are sorted, deduplicated, and never contain the page itself.
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end())) << "page " << p;
    EXPECT_EQ(std::adjacent_find(row.begin(), row.end()), row.end())
        << "page " << p;
    EXPECT_TRUE(std::find(row.begin(), row.end(), p) == row.end())
        << "page " << p;
    empty_rows += row.empty() ? 1 : 0;
    single_rows += row.size() == 1 ? 1 : 0;
  }
  return {empty_rows, single_rows};
}

TEST(PageAdjacency, EveryRowMatchesBruteForceRecomputation) {
  const ocb::ObjectBase base = SmallBase();
  const Placement placement = Placement::Build(
      base, /*page_size=*/4096, PlacementPolicy::kOptimizedSequential, 1.0);
  CheckAllRows(base, placement);
}

TEST(PageAdjacency, EdgeShapedBaseExercisesEmptyAndSingleRows) {
  const ocb::ObjectBase base = EdgeShapeBase();
  const Placement placement = Placement::Build(
      base, /*page_size=*/4096, PlacementPolicy::kSequential, 1.0);
  const auto [empty_rows, single_rows] = CheckAllRows(base, placement);
  // The edge base must actually exhibit the shapes this test is about;
  // if generation parameters ever change so it no longer does, fail
  // loudly instead of silently losing coverage.
  EXPECT_GT(empty_rows, 0u) << "no empty rows";
  EXPECT_GT(single_rows, 0u) << "no single-element rows";
}

TEST(PageAdjacency, EmptyAndSingleElementRowsBehaveAsSpans) {
  const ocb::ObjectBase base = SmallBase();
  const Placement placement = Placement::Build(
      base, /*page_size=*/4096, PlacementPolicy::kSequential, 1.0);
  PageAdjacency adjacency;
  adjacency.Rebuild(base, placement);
  for (PageId p = 0; p < adjacency.NumPages(); ++p) {
    const PageIdSpan row = adjacency.RowOf(p);
    if (row.empty()) {
      EXPECT_EQ(row.size(), 0u);
      EXPECT_EQ(row.begin(), row.end());
    } else if (row.size() == 1) {
      EXPECT_EQ(row.front(), row.back());
      EXPECT_EQ(row[0], row.front());
      EXPECT_EQ(row.begin() + 1, row.end());
    }
  }
}

TEST(PageAdjacency, OutOfRangeRowIdThrows) {
  const ocb::ObjectBase base = SmallBase();
  const Placement placement = Placement::Build(
      base, /*page_size=*/4096, PlacementPolicy::kOptimizedSequential, 1.0);
  PageAdjacency adjacency;
  adjacency.Rebuild(base, placement);
  EXPECT_NO_THROW(adjacency.RowOf(adjacency.NumPages() - 1));
  EXPECT_THROW(adjacency.RowOf(adjacency.NumPages()), util::Error);
  EXPECT_THROW(adjacency.RowOf(adjacency.NumPages() + 100), util::Error);
  EXPECT_THROW(adjacency.RowOf(kNullPage), util::Error);

  // A never-rebuilt index covers no pages at all.
  PageAdjacency fresh;
  EXPECT_EQ(fresh.NumPages(), 0u);
  EXPECT_THROW(fresh.RowOf(0), util::Error);
}

TEST(IdSpan, EmptySpanEdgeCases) {
  const util::IdSpan<uint64_t> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.begin(), empty.end());
  EXPECT_EQ(empty.data(), nullptr);
  // Two empty spans compare equal regardless of their data pointers.
  const uint64_t value = 7;
  const util::IdSpan<uint64_t> empty_with_data(&value, 0);
  EXPECT_TRUE(empty == empty_with_data);
  EXPECT_FALSE(empty != empty_with_data);
  size_t visited = 0;
  for (const uint64_t v : empty) {
    (void)v;
    ++visited;
  }
  EXPECT_EQ(visited, 0u);
}

TEST(IdSpan, SingleElementSpanEdgeCases) {
  const uint64_t value = 42;
  const util::IdSpan<uint64_t> one(&value, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 42u);
  EXPECT_EQ(one.back(), 42u);
  EXPECT_EQ(one[0], 42u);
  EXPECT_EQ(one.begin() + 1, one.end());
  const util::IdSpan<uint64_t> empty;
  EXPECT_FALSE(one == empty);
  EXPECT_TRUE(one != empty);
}

TEST(IdSpan, EqualityComparesContentsNotPointers) {
  const uint64_t a[] = {1, 2, 3};
  const uint64_t b[] = {1, 2, 3};
  const uint64_t c[] = {1, 2, 4};
  EXPECT_TRUE((util::IdSpan<uint64_t>(a, 3)) ==
              (util::IdSpan<uint64_t>(b, 3)));
  EXPECT_TRUE((util::IdSpan<uint64_t>(a, 3)) !=
              (util::IdSpan<uint64_t>(c, 3)));
  EXPECT_TRUE((util::IdSpan<uint64_t>(a, 2)) !=
              (util::IdSpan<uint64_t>(b, 3)));
  // A span is a view: it reflects the owning array, not a copy.
  uint64_t mutable_row[] = {5, 6};
  const util::IdSpan<uint64_t> view(mutable_row, 2);
  mutable_row[1] = 9;
  EXPECT_EQ(view[1], 9u);
}

}  // namespace
}  // namespace voodb::storage
