/// \file test_emulators.cpp
/// \brief Tests for the O2 / Texas direct-execution emulators.
#include <gtest/gtest.h>

#include "cluster/dstc.hpp"
#include "emu/o2_emulator.hpp"
#include "emu/texas_emulator.hpp"
#include "util/check.hpp"

namespace voodb::emu {
namespace {

ocb::OcbParameters SmallWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 600;
  p.max_refs_per_class = 3;
  p.base_instance_size = 60;
  p.seed = 81;
  return p;
}

TEST(O2Emulator, ColdRunFloorsAtTouchedPages) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  O2Config cfg;
  cfg.page_size = 1024;
  cfg.cache_pages = 10000;  // everything fits
  O2Emulator o2(cfg, &base, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  const core::PhaseMetrics m = o2.RunTransactions(gen, 200);
  EXPECT_EQ(m.transactions, 200u);
  EXPECT_GT(m.total_ios, 0u);
  EXPECT_LE(m.total_ios, o2.NumPages());  // at most one read per page
  EXPECT_EQ(m.writes, 0u);                // read-only workload, no pressure
}

TEST(O2Emulator, SmallerCacheNeverCostsLess) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto ios = [&](uint64_t cache_pages) {
    O2Config cfg;
    cfg.page_size = 1024;
    cfg.cache_pages = cache_pages;
    O2Emulator o2(cfg, &base, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
    return o2.RunTransactions(gen, 200).total_ios;
  };
  EXPECT_GE(ios(8), ios(32));
  EXPECT_GE(ios(32), ios(128));
}

TEST(O2Emulator, WarmRunHitsTheCache) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  O2Config cfg;
  cfg.page_size = 1024;
  cfg.cache_pages = 10000;
  O2Emulator o2(cfg, &base, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  const core::PhaseMetrics cold = o2.RunTransactions(gen, 100);
  const core::PhaseMetrics warm = o2.RunTransactions(gen, 100);
  EXPECT_LT(warm.total_ios, cold.total_ios / 2);
  EXPECT_GT(warm.HitRate(), cold.HitRate());
}

TEST(O2Emulator, StorageOverheadGrowsTheDatabase) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  O2Config lean;
  lean.page_size = 1024;
  lean.storage_overhead = 1.0;
  O2Config fat = lean;
  fat.storage_overhead = 1.33;
  EXPECT_GT(O2Emulator(fat, &base, 1).NumPages(),
            O2Emulator(lean, &base, 1).NumPages());
}

TEST(TexasEmulator, FitsInMemoryMeansColdFaultsOnly) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  TexasConfig cfg;
  cfg.page_size = 1024;
  cfg.memory_pages = 10000;
  TexasEmulator texas(cfg, &base, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  const core::PhaseMetrics m = texas.RunTransactions(gen, 200);
  EXPECT_LE(m.reads, texas.NumPages());
  EXPECT_EQ(m.writes, 0u);  // no eviction, no swap
}

TEST(TexasEmulator, MemoryPressureCausesSwap) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  TexasConfig cfg;
  cfg.page_size = 1024;
  cfg.memory_pages = 24;  // far less than the base
  TexasEmulator texas(cfg, &base, 1);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  const core::PhaseMetrics m = texas.RunTransactions(gen, 200);
  EXPECT_GT(m.writes, 0u);  // dirty-on-load pages swap out
  EXPECT_GT(m.total_ios, texas.NumPages());
}

TEST(TexasEmulator, LessMemoryNeverCostsLess) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto ios = [&](uint64_t frames) {
    TexasConfig cfg;
    cfg.page_size = 1024;
    cfg.memory_pages = frames;
    TexasEmulator texas(cfg, &base, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
    return texas.RunTransactions(gen, 150).total_ios;
  };
  EXPECT_GE(ios(16), ios(64));
  EXPECT_GE(ios(64), ios(512));
}

TEST(TexasEmulator, ReservationsAmplifyThrashing) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto ios = [&](bool reserve) {
    TexasConfig cfg;
    cfg.page_size = 1024;
    cfg.memory_pages = 48;
    cfg.reserve_references = reserve;
    TexasEmulator texas(cfg, &base, 1);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
    return texas.RunTransactions(gen, 150).total_ios;
  };
  EXPECT_GT(ios(true), ios(false));
}

TEST(TexasEmulator, FramesForMemoryScalesLinearly) {
  EXPECT_NEAR(static_cast<double>(TexasConfig::FramesForMemory(64.0, 4096)) /
                  static_cast<double>(TexasConfig::FramesForMemory(8.0, 4096)),
              8.0, 0.01);
  EXPECT_GE(TexasConfig::FramesForMemory(0.001, 4096), 16u);
  EXPECT_THROW(TexasConfig::FramesForMemory(0.0, 4096), util::Error);
}

TEST(TexasEmulator, DstcLifecycle) {
  ocb::OcbParameters wl = SmallWorkload();
  wl.root_region = 6;
  wl.hierarchy_depth = 3;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  TexasConfig cfg;
  cfg.page_size = 1024;
  cfg.memory_pages = 4000;  // base fits: isolate the clustering effect
  TexasEmulator texas(cfg, &base, 1);
  texas.SetClusteringPolicy(std::make_unique<cluster::DstcPolicy>());
  ASSERT_NE(texas.policy(), nullptr);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  const uint64_t pages_before = texas.NumPages();
  const core::PhaseMetrics pre = texas.RunTransactionsOfKind(
      gen, ocb::TransactionKind::kHierarchyTraversal, 120);
  const TexasClusteringMetrics cm = texas.PerformClustering();
  ASSERT_TRUE(cm.reorganized);
  EXPECT_GT(cm.num_clusters, 0u);
  EXPECT_GE(cm.mean_cluster_size, 2.0);
  // Physical OIDs: the whole database is scanned...
  EXPECT_EQ(cm.scan_reads, pages_before);
  // ... and swizzle-dirty pages are written back, plus the new clusters.
  EXPECT_EQ(cm.patch_writes, pages_before);
  EXPECT_GT(cm.cluster_writes, 0u);
  EXPECT_EQ(cm.overhead_ios,
            cm.scan_reads + cm.patch_writes + cm.cluster_writes);
  texas.DropMemory();
  const core::PhaseMetrics post = texas.RunTransactionsOfKind(
      gen, ocb::TransactionKind::kHierarchyTraversal, 120);
  // Clustering wins: the hot set loads with fewer I/Os.
  EXPECT_LT(post.total_ios, pre.total_ios);
}

TEST(TexasEmulator, PerformClusteringWithoutPolicyThrows) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  TexasConfig cfg;
  cfg.page_size = 1024;
  TexasEmulator texas(cfg, &base, 1);
  EXPECT_THROW(texas.PerformClustering(), util::Error);
}

TEST(TexasEmulator, CleanScanPatchesOnlyAffectedPages) {
  // Without dirty-on-load, the reference patch rewrites only pages that
  // actually hold a reference to (or lose) a moved object.
  ocb::OcbParameters wl = SmallWorkload();
  wl.root_region = 6;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  TexasConfig cfg;
  cfg.page_size = 1024;
  cfg.memory_pages = 4000;
  cfg.dirty_on_load = false;
  TexasEmulator texas(cfg, &base, 1);
  texas.SetClusteringPolicy(std::make_unique<cluster::DstcPolicy>());
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(3));
  texas.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                              120);
  const TexasClusteringMetrics cm = texas.PerformClustering();
  ASSERT_TRUE(cm.reorganized);
  EXPECT_LT(cm.patch_writes, cm.scan_reads);
  EXPECT_GT(cm.patch_writes, 0u);
}

}  // namespace
}  // namespace voodb::emu
