/// \file test_scheduler_lane.cpp
/// \brief The zero-delay fast lane: bit-identity with the lane off, with
/// a sorted-vector reference model, and under cancellation storms.
///
/// The lane is a pure performance knob — every test here pins down one
/// face of that contract: random mixes of zero-delay and positive-delay
/// events at random priorities must execute in the exact same
/// (time, priority desc, seq) order with the lane on, with the lane off,
/// and under the dumbest possible correct scheduler (linear-scan min over
/// a vector); RunWindow must leave lane events sitting exactly at the
/// window deadline for the next window; and cancelled lane residents must
/// be skimmed or compacted without ever reordering the survivors.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <random>
#include <utility>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/scheduler.hpp"

namespace voodb::desp {
namespace {

bool SameKey(const EventKey& a, const EventKey& b) {
  return a.time == b.time && a.priority == b.priority && a.seq == b.seq;
}

/// Collects fired keys through Scheduler::SetTraceHook.
struct KeyTrace {
  std::vector<EventKey> keys;
  static void Hook(void* ctx, const EventKey& key) {
    static_cast<KeyTrace*>(ctx)->keys.push_back(key);
  }
};

void ExpectSameTrace(const std::vector<EventKey>& a,
                     const std::vector<EventKey>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(SameKey(a[i], b[i]))
        << label << ": divergence at event " << i << ": (" << a[i].time
        << "," << a[i].priority << "," << a[i].seq << ") vs (" << b[i].time
        << "," << b[i].priority << "," << b[i].seq << ")";
  }
}

/// The reference model: a flat vector searched linearly for the full
/// (time, priority desc, seq) minimum.  Too slow to use, too simple to
/// be wrong.
class ReferenceKernel {
 public:
  using Action = std::function<void()>;

  SimTime Now() const { return now_; }

  void Schedule(SimTime delay, Action action, int priority = 0) {
    entries_.push_back(
        Entry{EventKey{now_ + delay, priority, seq_++}, std::move(action)});
  }

  void Run() {
    while (!entries_.empty()) {
      size_t best = 0;
      for (size_t i = 1; i < entries_.size(); ++i) {
        if (FiresBefore(entries_[i].key, entries_[best].key)) best = i;
      }
      Entry entry = std::move(entries_[best]);
      entries_.erase(entries_.begin() + best);
      now_ = entry.key.time;
      keys.push_back(entry.key);
      entry.action();
    }
  }

  std::vector<EventKey> keys;

 private:
  struct Entry {
    EventKey key;
    Action action;
  };
  SimTime now_ = 0.0;
  uint64_t seq_ = 0;
  std::vector<Entry> entries_;
};

/// A self-similar chaos workload: every event may spawn children at
/// zero or positive delays and random priorities.  The RNG is consumed
/// in schedule/execution order, so two kernels walk the same program iff
/// they execute the same total order — any divergence snowballs into a
/// trace mismatch.
template <typename Kernel>
class ChaosProgram {
 public:
  ChaosProgram(Kernel* kernel, uint32_t seed) : kernel_(kernel), rng_(seed) {}

  void SeedRoots(int roots, int budget) {
    for (int i = 0; i < roots; ++i) Spawn(budget);
  }

 private:
  void Spawn(int budget) {
    static const double kDelays[] = {0.0, 0.0, 0.0, 0.5, 1.25};
    const double delay = kDelays[rng_() % 5];
    const int priority = static_cast<int>(rng_() % 5) - 2;
    kernel_->Schedule(
        delay,
        [this, budget] {
          const int kids = static_cast<int>(rng_() % 3);
          for (int k = 0; k < kids && budget > 0; ++k) Spawn(budget - 1);
        },
        priority);
  }

  Kernel* kernel_;
  std::mt19937 rng_;
};

class SchedulerLaneTest : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(SchedulerLaneTest, ZeroDelayEventsTakeTheLaneOnlyWhenEnabled) {
  Scheduler on(GetParam());
  on.Schedule(0.0, [] {});
  on.Schedule(1.0, [] {});
  EXPECT_EQ(on.LaneEntries(), 1u);
  EXPECT_EQ(on.queue_stats().lane_pushes, 1u);
  EXPECT_EQ(on.queue_stats().heap_pushes, 1u);
  on.Run();
  EXPECT_EQ(on.queue_stats().lane_pops, 1u);
  EXPECT_EQ(on.queue_stats().heap_pops, 1u);

  Scheduler off(GetParam());
  off.SetLaneEnabled(false);
  off.Schedule(0.0, [] {});
  EXPECT_EQ(off.LaneEntries(), 0u);
  EXPECT_EQ(off.queue_stats().lane_pushes, 0u);
}

TEST_P(SchedulerLaneTest, MergePicksTheQueueHeadWhenItFiresFirst) {
  // Same timestamp split across lane and queue: the queue event with
  // the higher priority must beat the earlier-seq lane event, and the
  // queue event with a later seq must lose to it.
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(0.0, [&] { order.push_back(1); });       // lane, pri 0, seq 0
  s.SetLaneEnabled(false);
  s.Schedule(0.0, [&] { order.push_back(2); }, 5);    // queue, pri 5, seq 1
  s.Schedule(0.0, [&] { order.push_back(3); });       // queue, pri 0, seq 2
  s.SetLaneEnabled(true);
  s.Schedule(0.0, [&] { order.push_back(4); }, 5);    // lane, pri 5, seq 3
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

TEST_P(SchedulerLaneTest, LanePriorityRingsFireHighestFirstThenFifo) {
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(0.0, [&] { order.push_back(1); }, 1);
  s.Schedule(0.0, [&] { order.push_back(2); }, 0);
  s.Schedule(0.0, [&] { order.push_back(3); }, 2);
  s.Schedule(0.0, [&] { order.push_back(4); }, 0);
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 4}));
}

TEST_P(SchedulerLaneTest, PropertyChaosMatchesLaneOffAndReferenceModel) {
  for (uint32_t seed : {1u, 7u, 23u, 91u, 1234u}) {
    KeyTrace lane_on;
    {
      Scheduler s(GetParam());
      s.SetTraceHook(&KeyTrace::Hook, &lane_on);
      ChaosProgram<Scheduler> program(&s, seed);
      program.SeedRoots(16, 6);
      s.Run();
      EXPECT_GT(s.queue_stats().lane_pops, 0u) << "seed " << seed;
    }
    KeyTrace lane_off;
    {
      Scheduler s(GetParam());
      s.SetLaneEnabled(false);
      s.SetTraceHook(&KeyTrace::Hook, &lane_off);
      ChaosProgram<Scheduler> program(&s, seed);
      program.SeedRoots(16, 6);
      s.Run();
      EXPECT_EQ(s.queue_stats().lane_pops, 0u) << "seed " << seed;
    }
    ReferenceKernel reference;
    {
      ChaosProgram<ReferenceKernel> program(&reference, seed);
      program.SeedRoots(16, 6);
      reference.Run();
    }
    ASSERT_GT(lane_on.keys.size(), 16u) << "seed " << seed;
    ExpectSameTrace(lane_on.keys, lane_off.keys, "lane on vs lane off");
    ExpectSameTrace(lane_on.keys, reference.keys, "lane on vs reference");
  }
}

TEST_P(SchedulerLaneTest, RunWindowLeavesLaneEventsExactlyAtTheDeadline) {
  // A partition can be handed a window that ends at (or before) its own
  // clock when another partition's earlier events defined the window
  // start.  Lane events carry time == Now() and must wait for a window
  // that strictly covers them.
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(10.0, [&] {
    order.push_back(0);
    s.Schedule(0.0, [&] { order.push_back(1); });
    s.Schedule(0.0, [&] { order.push_back(2); }, 1);
    s.Stop();
  });
  s.Run();
  ASSERT_EQ(order, (std::vector<int>{0}));
  ASSERT_EQ(s.LaneEntries(), 2u);

  EXPECT_EQ(s.RunWindow(10.0), 0u);  // end == lane time: not due yet
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_TRUE(s.HasNextEvent());
  EXPECT_DOUBLE_EQ(s.NextEventTime(), 10.0);

  EXPECT_EQ(s.RunWindow(10.5), 2u);  // now strictly inside the window
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(s.Now(), 10.0);  // clock stays at the last event
}

TEST_P(SchedulerLaneTest, RunUntilExecutesLaneEventsAtTheDeadline) {
  // RunUntil's contract is inclusive: zero-delay chains spawned by an
  // event at exactly `deadline` run to exhaustion before it returns.
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(2.0, [&] {
    order.push_back(1);
    s.Schedule(0.0, [&] {
      order.push_back(2);
      s.Schedule(0.0, [&] { order.push_back(3); });
    });
  });
  s.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.0);
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST_P(SchedulerLaneTest, LaneCancelStormKeepsTheLaneCompacted) {
  // The lane analogue of the re-armed-timeout storm: cancelled lane
  // residents are lazily removed, and the per-structure compaction bound
  // keeps the documented QueueEntries() < 2 * PendingEvents() + 1
  // invariant through every Cancel.
  Scheduler s(GetParam());
  std::vector<int> fired;
  s.Schedule(1.0, [&] {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
      handles.push_back(s.Schedule(0.0, [&fired, i] { fired.push_back(i); }));
    }
    for (size_t i = 0; i < handles.size(); ++i) {
      if (i % 16 == 0) continue;  // keep a few survivors
      EXPECT_TRUE(s.Cancel(handles[i]));
      EXPECT_LT(s.QueueEntries(), 2 * s.PendingEvents() + 1)
          << "cancel " << i;
    }
  });
  s.Run();
  // The survivors fire in their original FIFO (= seq) order.
  std::vector<int> expected;
  for (int i = 0; i < 200; i += 16) expected.push_back(i);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(s.PendingEvents(), 0u);
  EXPECT_GT(s.queue_stats().compactions, 0u);
}

TEST_P(SchedulerLaneTest, CompactionNeverReordersSurvivingKeys) {
  // Storm both structures at once — far-future queue events and
  // zero-delay lane events, cancelling enough of each to force Compact()
  // and CompactLane() — then check the survivors' trace against a
  // lane-disabled scheduler running the identical program.
  auto run = [kind = GetParam()](bool lane, KeyTrace* trace) {
    Scheduler s(kind);
    s.SetLaneEnabled(lane);
    s.SetTraceHook(&KeyTrace::Hook, trace);
    std::vector<EventHandle> timeouts;
    for (int i = 0; i < 64; ++i) {
      timeouts.push_back(s.Schedule(100.0 + i, [] {}, i % 3));
    }
    s.Schedule(1.0, [&] {
      std::vector<EventHandle> continuations;
      for (int i = 0; i < 64; ++i) {
        continuations.push_back(s.Schedule(0.0, [] {}, i % 3));
      }
      for (size_t i = 0; i < continuations.size(); ++i) {
        if (i % 5 != 0) s.Cancel(continuations[i]);
      }
      for (size_t i = 0; i < timeouts.size(); ++i) {
        if (i % 7 != 0) s.Cancel(timeouts[i]);
      }
    });
    s.Run();
    EXPECT_GT(s.queue_stats().compactions, 0u);
  };
  KeyTrace lane_on, lane_off;
  run(true, &lane_on);
  run(false, &lane_off);
  ExpectSameTrace(lane_on.keys, lane_off.keys, "post-compaction survivors");
  // Full (time, priority, seq) keys are not monotone across a trace —
  // an event can spawn a higher-priority sibling at its own timestamp —
  // but simulated time never runs backwards.
  for (size_t i = 1; i < lane_on.keys.size(); ++i) {
    EXPECT_LE(lane_on.keys[i - 1].time, lane_on.keys[i].time)
        << "clock ran backwards at " << i;
  }
}

TEST_P(SchedulerLaneTest, ReservePresizesWithoutChangingBehavior) {
  KeyTrace reserved_trace, plain_trace;
  {
    Scheduler s(GetParam());
    s.Reserve(1024);
    EXPECT_GE(s.ArenaCapacity(), 1024u);
    s.SetTraceHook(&KeyTrace::Hook, &reserved_trace);
    ChaosProgram<Scheduler> program(&s, 42);
    program.SeedRoots(8, 5);
    s.Run();
  }
  {
    Scheduler s(GetParam());
    s.SetTraceHook(&KeyTrace::Hook, &plain_trace);
    ChaosProgram<Scheduler> program(&s, 42);
    program.SeedRoots(8, 5);
    s.Run();
  }
  ExpectSameTrace(reserved_trace.keys, plain_trace.keys,
                  "reserved vs unreserved");
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SchedulerLaneTest,
    ::testing::Values(EventQueueKind::kBinaryHeap,
                      EventQueueKind::kQuaternaryHeap,
                      EventQueueKind::kCalendar),
    [](const ::testing::TestParamInfo<EventQueueKind>& info) {
      return std::string(ToString(info.param));
    });

}  // namespace
}  // namespace voodb::desp
