/// \file test_replication.cpp
/// \brief Tests for the independent-replication runner (paper §4.2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "desp/random.hpp"
#include "desp/replication.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(MetricSink, RejectsDuplicateObservation) {
  MetricSink sink;
  sink.Observe("x", 1.0);
  EXPECT_THROW(sink.Observe("x", 2.0), util::Error);
}

TEST(ReplicationRunner, RunsRequestedReplications) {
  int calls = 0;
  ReplicationRunner runner([&](uint64_t, MetricSink& sink) {
    ++calls;
    sink.Observe("v", 1.0);
  });
  const ReplicationResult result = runner.Run(7);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(result.replications(), 7u);
  EXPECT_EQ(result.Metric("v").count(), 7u);
}

TEST(ReplicationRunner, SeedsAreDistinctAndDeterministic) {
  std::vector<uint64_t> seeds1;
  std::vector<uint64_t> seeds2;
  auto collect = [](std::vector<uint64_t>* out) {
    return ReplicationRunner(
        [out](uint64_t seed, MetricSink& sink) {
          out->push_back(seed);
          sink.Observe("v", 0.0);
        },
        123);
  };
  collect(&seeds1).Run(5);
  collect(&seeds2).Run(5);
  EXPECT_EQ(seeds1, seeds2);
  for (size_t i = 0; i < seeds1.size(); ++i) {
    for (size_t j = i + 1; j < seeds1.size(); ++j) {
      EXPECT_NE(seeds1[i], seeds1[j]);
    }
  }
}

TEST(ReplicationRunner, DifferentBaseSeedsGiveDifferentStreams) {
  auto first_seed = [](uint64_t base) {
    uint64_t got = 0;
    ReplicationRunner runner(
        [&got](uint64_t seed, MetricSink& sink) {
          got = seed;
          sink.Observe("v", 0.0);
        },
        base);
    runner.Run(1);
    return got;
  };
  EXPECT_NE(first_seed(1), first_seed(2));
}

TEST(ReplicationRunner, AggregatesMetricsAcrossReplications) {
  ReplicationRunner runner([](uint64_t seed, MetricSink& sink) {
    RandomStream rng(seed);
    sink.Observe("mean5", rng.Uniform(4.0, 6.0));
    sink.Observe("constant", 3.0);
  });
  const ReplicationResult result = runner.Run(100);
  EXPECT_NEAR(result.Metric("mean5").mean(), 5.0, 0.2);
  EXPECT_DOUBLE_EQ(result.Metric("constant").mean(), 3.0);
  EXPECT_DOUBLE_EQ(result.Metric("constant").stddev(), 0.0);
  EXPECT_TRUE(result.HasMetric("mean5"));
  EXPECT_FALSE(result.HasMetric("nope"));
  EXPECT_THROW(result.Metric("nope"), util::Error);
  EXPECT_EQ(result.MetricNames().size(), 2u);
}

TEST(ReplicationRunner, ConfidenceIntervalCoversTrueMean) {
  ReplicationRunner runner([](uint64_t seed, MetricSink& sink) {
    RandomStream rng(seed);
    // Mean 10 exponential.
    sink.Observe("x", rng.Exponential(10.0));
  });
  const ReplicationResult result = runner.Run(100);
  const ConfidenceInterval ci = result.Interval("x", 0.95);
  EXPECT_TRUE(ci.Contains(10.0))
      << "[" << ci.lower() << ", " << ci.upper() << "]";
}

TEST(ReplicationRunner, RunToPrecisionReachesTarget) {
  ReplicationRunner runner([](uint64_t seed, MetricSink& sink) {
    RandomStream rng(seed);
    sink.Observe("x", rng.Uniform(9.0, 11.0));
  });
  const ReplicationResult result =
      runner.RunToPrecision("x", 0.05, 10, 200);
  const ConfidenceInterval ci = result.Interval("x");
  // Within 5% of the sample mean with 95% confidence (the paper's goal).
  EXPECT_LE(ci.half_width, 0.05 * ci.mean * 1.25)  // slack for resampling
      << "n=" << result.replications();
  EXPECT_GE(result.replications(), 10u);
  EXPECT_LE(result.replications(), 200u);
}

TEST(ReplicationRunner, RunToPrecisionStopsAtPilotWhenPrecise) {
  ReplicationRunner runner([](uint64_t, MetricSink& sink) {
    sink.Observe("x", 42.0);  // zero variance
  });
  const ReplicationResult result = runner.RunToPrecision("x", 0.05, 10, 100);
  EXPECT_EQ(result.replications(), 10u);
}

TEST(ReplicationRunner, RejectsBadUsage) {
  ReplicationRunner runner([](uint64_t, MetricSink& sink) {
    sink.Observe("x", 1.0);
  });
  EXPECT_THROW(runner.Run(0), util::Error);
  EXPECT_THROW(runner.RunToPrecision("x", 0.0), util::Error);
  EXPECT_THROW(ReplicationRunner(nullptr), util::Error);
}

}  // namespace
}  // namespace voodb::desp
