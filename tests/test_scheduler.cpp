/// \file test_scheduler.cpp
/// \brief Tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "desp/scheduler.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

/// The whole suite runs once per event-queue backend: the scheduler's
/// semantics (ordering, cancellation, RunUntil, Stop) are backend-
/// independent by contract.
class SchedulerTest : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(SchedulerTest, StartsAtTimeZero) {
  Scheduler s(GetParam());
  EXPECT_DOUBLE_EQ(s.Now(), 0.0);
  EXPECT_EQ(s.PendingEvents(), 0u);
  EXPECT_FALSE(s.Step());
}

TEST_P(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(3.0, [&] { order.push_back(3); });
  s.Schedule(1.0, [&] { order.push_back(1); });
  s.Schedule(2.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);
  EXPECT_EQ(s.ExecutedEvents(), 3u);
}

TEST_P(SchedulerTest, SimultaneousEventsByPriorityThenFifo) {
  Scheduler s(GetParam());
  std::vector<std::string> order;
  s.Schedule(1.0, [&] { order.push_back("low-first"); }, 0);
  s.Schedule(1.0, [&] { order.push_back("high"); }, 5);
  s.Schedule(1.0, [&] { order.push_back("low-second"); }, 0);
  s.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "low-first", "low-second"}));
}

TEST_P(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s(GetParam());
  double seen = -1.0;
  s.Schedule(2.5, [&] { seen = s.Now(); });
  s.Run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST_P(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s(GetParam());
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(s.Now());
    if (times.size() < 5) s.Schedule(1.0, chain);
  };
  s.Schedule(1.0, chain);
  s.Run();
  EXPECT_EQ(times, (std::vector<double>{1, 2, 3, 4, 5}));
}

TEST_P(SchedulerTest, CancelPreventsExecution) {
  Scheduler s(GetParam());
  bool ran = false;
  EventHandle h = s.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(s.Cancel(h));
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));  // double cancel
  s.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.ExecutedEvents(), 0u);
}

TEST_P(SchedulerTest, CancelUpdatesPendingCount) {
  Scheduler s(GetParam());
  EventHandle h1 = s.Schedule(1.0, [] {});
  s.Schedule(2.0, [] {});
  EXPECT_EQ(s.PendingEvents(), 2u);
  s.Cancel(h1);
  EXPECT_EQ(s.PendingEvents(), 1u);
  s.Run();
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST_P(SchedulerTest, CannotCancelFiredEvent) {
  Scheduler s(GetParam());
  EventHandle h = s.Schedule(1.0, [] {});
  s.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));
}

TEST_P(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s(GetParam());
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.Schedule(t, [&, t] { times.push_back(t); });
  }
  s.RunUntil(2.5);
  EXPECT_EQ(times, (std::vector<double>{1, 2}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.5);
  EXPECT_EQ(s.PendingEvents(), 2u);
  s.Run();
  EXPECT_EQ(times.size(), 4u);
}

TEST_P(SchedulerTest, RunUntilExecutesEventsExactlyAtDeadline) {
  Scheduler s(GetParam());
  bool ran = false;
  s.Schedule(2.0, [&] { ran = true; });
  s.RunUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST_P(SchedulerTest, StopHaltsRun) {
  Scheduler s(GetParam());
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.Schedule(i, [&] {
      ++count;
      if (count == 3) s.Stop();
    });
  }
  s.Run();
  EXPECT_EQ(count, 3);
  s.Run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST_P(SchedulerTest, RejectsSchedulingInThePast) {
  Scheduler s(GetParam());
  s.Schedule(5.0, [] {});
  s.Step();
  EXPECT_THROW(s.ScheduleAt(4.0, [] {}), util::Error);
  EXPECT_THROW(s.Schedule(-1.0, [] {}), util::Error);
  EXPECT_THROW(s.Schedule(1.0, nullptr), util::Error);
  // An empty std::function is rejected at schedule time, not at fire
  // time (the SmallFunction wrapper preserves its emptiness).
  EXPECT_THROW(s.Schedule(1.0, std::function<void()>{}), util::Error);
  EXPECT_THROW(s.Schedule(1.0, static_cast<void (*)()>(nullptr)),
               util::Error);
}

TEST_P(SchedulerTest, ZeroDelayRunsAtCurrentTime) {
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(1.0, [&] {
    order.push_back(1);
    s.Schedule(0.0, [&] { order.push_back(2); });
  });
  s.Schedule(1.0, [&] { order.push_back(3); });
  s.Run();
  // The zero-delay event is scheduled after event 3 at the same time.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(s.Now(), 1.0);
}

TEST_P(SchedulerTest, OversizedCapturesSpillToHeapAndStillFire) {
  // Captures beyond SmallFunction's inline budget take the heap path;
  // behaviour (firing, cancellation, eager destruction) must not differ.
  Scheduler s(GetParam());
  std::array<uint64_t, 32> big{};  // 256 bytes > kInlineBytes
  for (size_t i = 0; i < big.size(); ++i) big[i] = i;
  uint64_t sum = 0;
  s.Schedule(1.0, [big, &sum] {
    for (uint64_t v : big) sum += v;
  });
  auto shared = std::make_shared<int>(7);
  EventHandle cancelled = s.Schedule(2.0, [big, shared, &sum] { sum += 1; });
  EXPECT_EQ(shared.use_count(), 2);
  s.Cancel(cancelled);
  // Cancel releases the oversized capture (and its shared_ptr) eagerly.
  EXPECT_EQ(shared.use_count(), 1);
  s.Run();
  EXPECT_EQ(sum, 32u * 31u / 2u);
}

TEST_P(SchedulerTest, StopFromInsideAnEventHaltsRunUntil) {
  // Stop() called mid-RunUntil must halt after the current event, leave
  // the clock at that event (not the deadline), and keep the remaining
  // events pending — windowed execution relies on exactly this.
  Scheduler s(GetParam());
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.Schedule(t, [&, t] {
      times.push_back(t);
      if (t == 2.0) s.Stop();
    });
  }
  s.RunUntil(10.0);
  EXPECT_EQ(times, (std::vector<double>{1, 2}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.0);
  EXPECT_EQ(s.PendingEvents(), 2u);
  s.RunUntil(10.0);  // resumes
  EXPECT_EQ(times.size(), 4u);
}

TEST_P(SchedulerTest, EventScheduledExactlyAtDeadlineFromInsideAnEventRuns) {
  // An event firing at the deadline may schedule another event at that
  // same instant; RunUntil's contract ("events at exactly `deadline` are
  // executed") covers the newcomer too.
  Scheduler s(GetParam());
  std::vector<int> order;
  s.Schedule(2.0, [&] {
    order.push_back(1);
    s.Schedule(0.0, [&] { order.push_back(2); });
    s.ScheduleAt(2.0, [&] { order.push_back(3); });
  });
  s.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.0);
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST_P(SchedulerTest, CancelStormsKeepTheQueueCompacted) {
  // The documented invariant: QueueEntries() < 2 * PendingEvents() + 1
  // after every Cancel.  Re-armed timeouts are the adversarial pattern —
  // schedule far-future events and cancel almost all of them, in waves.
  Scheduler s(GetParam());
  for (int wave = 0; wave < 8; ++wave) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
      handles.push_back(
          s.Schedule(1000.0 + wave * 100.0 + i, [] {}));
    }
    for (size_t i = 0; i < handles.size(); ++i) {
      if (i % 16 == 0) continue;  // keep a few alive across waves
      EXPECT_TRUE(s.Cancel(handles[i]));
      EXPECT_LT(s.QueueEntries(), 2 * s.PendingEvents() + 1)
          << "wave " << wave << " cancel " << i;
    }
  }
  // The survivors still fire, in order.
  uint64_t before = s.ExecutedEvents();
  s.Run();
  EXPECT_EQ(s.ExecutedEvents() - before, 8u * ((200u + 15u) / 16u));
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST_P(SchedulerTest, ManyEventsStressDeterminism) {
  auto run = [kind = GetParam()] {
    Scheduler s(kind);
    std::vector<uint64_t> trace;
    for (uint64_t i = 0; i < 1000; ++i) {
      s.Schedule(static_cast<double>((i * 37) % 100),
                 [&trace, i] { trace.push_back(i); },
                 static_cast<int>(i % 3));
    }
    s.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SchedulerTest,
    ::testing::Values(EventQueueKind::kBinaryHeap,
                      EventQueueKind::kQuaternaryHeap,
                      EventQueueKind::kCalendar),
    [](const ::testing::TestParamInfo<EventQueueKind>& info) {
      return std::string(ToString(info.param));
    });

}  // namespace
}  // namespace voodb::desp
