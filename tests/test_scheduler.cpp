/// \file test_scheduler.cpp
/// \brief Tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "desp/scheduler.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_DOUBLE_EQ(s.Now(), 0.0);
  EXPECT_EQ(s.PendingEvents(), 0u);
  EXPECT_FALSE(s.Step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.Schedule(3.0, [&] { order.push_back(3); });
  s.Schedule(1.0, [&] { order.push_back(1); });
  s.Schedule(2.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);
  EXPECT_EQ(s.ExecutedEvents(), 3u);
}

TEST(Scheduler, SimultaneousEventsByPriorityThenFifo) {
  Scheduler s;
  std::vector<std::string> order;
  s.Schedule(1.0, [&] { order.push_back("low-first"); }, 0);
  s.Schedule(1.0, [&] { order.push_back("high"); }, 5);
  s.Schedule(1.0, [&] { order.push_back("low-second"); }, 0);
  s.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "low-first", "low-second"}));
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  double seen = -1.0;
  s.Schedule(2.5, [&] { seen = s.Now(); });
  s.Run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(s.Now());
    if (times.size() < 5) s.Schedule(1.0, chain);
  };
  s.Schedule(1.0, chain);
  s.Run();
  EXPECT_EQ(times, (std::vector<double>{1, 2, 3, 4, 5}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(s.Cancel(h));
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));  // double cancel
  s.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.ExecutedEvents(), 0u);
}

TEST(Scheduler, CancelUpdatesPendingCount) {
  Scheduler s;
  EventHandle h1 = s.Schedule(1.0, [] {});
  s.Schedule(2.0, [] {});
  EXPECT_EQ(s.PendingEvents(), 2u);
  s.Cancel(h1);
  EXPECT_EQ(s.PendingEvents(), 1u);
  s.Run();
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST(Scheduler, CannotCancelFiredEvent) {
  Scheduler s;
  EventHandle h = s.Schedule(1.0, [] {});
  s.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.Cancel(h));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.Schedule(t, [&, t] { times.push_back(t); });
  }
  s.RunUntil(2.5);
  EXPECT_EQ(times, (std::vector<double>{1, 2}));
  EXPECT_DOUBLE_EQ(s.Now(), 2.5);
  EXPECT_EQ(s.PendingEvents(), 2u);
  s.Run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Scheduler, RunUntilExecutesEventsExactlyAtDeadline) {
  Scheduler s;
  bool ran = false;
  s.Schedule(2.0, [&] { ran = true; });
  s.RunUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.Schedule(i, [&] {
      ++count;
      if (count == 3) s.Stop();
    });
  }
  s.Run();
  EXPECT_EQ(count, 3);
  s.Run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RejectsSchedulingInThePast) {
  Scheduler s;
  s.Schedule(5.0, [] {});
  s.Step();
  EXPECT_THROW(s.ScheduleAt(4.0, [] {}), util::Error);
  EXPECT_THROW(s.Schedule(-1.0, [] {}), util::Error);
  EXPECT_THROW(s.Schedule(1.0, nullptr), util::Error);
}

TEST(Scheduler, ZeroDelayRunsAtCurrentTime) {
  Scheduler s;
  std::vector<int> order;
  s.Schedule(1.0, [&] {
    order.push_back(1);
    s.Schedule(0.0, [&] { order.push_back(2); });
  });
  s.Schedule(1.0, [&] { order.push_back(3); });
  s.Run();
  // The zero-delay event is scheduled after event 3 at the same time.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(s.Now(), 1.0);
}

TEST(Scheduler, ManyEventsStressDeterminism) {
  auto run = [] {
    Scheduler s;
    std::vector<uint64_t> trace;
    for (uint64_t i = 0; i < 1000; ++i) {
      s.Schedule(static_cast<double>((i * 37) % 100),
                 [&trace, i] { trace.push_back(i); },
                 static_cast<int>(i % 3));
    }
    s.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace voodb::desp
