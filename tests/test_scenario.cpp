/// \file test_scenario.cpp
/// \brief Tests for the scenario catalog and the single-driver run path:
/// catalog completeness, override resolution through the parameter
/// registry, and bit-identical parity between `voodb run` scenarios and
/// the legacy bench code path under identical seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "scenarios.hpp"
#include "sweeps.hpp"
#include "util/check.hpp"
#include "voodb/catalog.hpp"

namespace voodb::bench {
namespace {

exp::ScenarioOptions SmallOptions(uint64_t transactions) {
  exp::ScenarioOptions options;
  options.replications = 2;
  options.transactions = transactions;
  options.seed = 42;
  options.threads = 1;
  return options;
}

RunOptions SmallRunOptions(uint64_t transactions) {
  RunOptions options;
  options.replications = 2;
  options.transactions = transactions;
  options.seed = 42;
  options.threads = 1;
  options.event_queue = desp::EventQueueKind::kBinaryHeap;
  return options;
}

TEST(ScenarioCatalog, RegistersEveryPaperFigureTableAndAblation) {
  RegisterBenchScenarios();
  const std::vector<std::string> expected = {
      "fig06",          "fig07",
      "fig08",          "fig09",
      "fig10",          "fig11",
      "table6",         "table7",
      "table8",         "ablation_buffer_policy",
      "ablation_clustering", "ablation_failures",
      "ablation_locking",    "ablation_multiprog",
      "ablation_placement",  "ablation_sysclass",
      "ablation_vm_model",   "shard_scale",
      "farm_speedup",        "cc_abyss",
      "ycsb_zipf",           "micro_parallel",
      "micro_cc",
      "micro_scheduler",     "micro_hotpath",
      "micro_storage",       "trace_mrc",
      "fig08_mrc",           "micro_trace"};
  EXPECT_EQ(exp::ScenarioRegistry::Instance().Names(), expected);
}

TEST(ScenarioCatalog, UnknownScenarioFailsWithNearestNameSuggestion) {
  RegisterBenchScenarios();
  // The registry lookup carries the "did you mean" diagnostic (the same
  // UX as unknown flags)...
  try {
    exp::ScenarioRegistry::Instance().At("fig8");
    FAIL() << "expected util::Error for unknown scenario";
  } catch (const util::Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown scenario 'fig8'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'fig08'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("voodb list"), std::string::npos) << message;
  }
  // ... and the driver path behind `voodb run <scenario>` turns it into
  // a non-zero exit instead of leaking the exception.
  const char* argv[] = {"voodb"};
  EXPECT_EQ(RunScenarioMain("fig8", 1, argv), 1);
  EXPECT_EQ(RunScenarioMain("ablation_lockin", 1, argv), 1);
}

TEST(ScenarioCatalog, ReplicatedRunsRejectTraceRecording) {
  // Every replication would truncate the same trace_path; `voodb trace
  // record` is the single-run surface for recording.
  RegisterBenchScenarios();
  const exp::Scenario& scenario =
      exp::ScenarioRegistry::Instance().At("fig06");
  try {
    RunScenario(scenario, SmallOptions(10),
                {{"trace_record", "true"}, {"trace_path", "t.vtrc"}});
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("voodb trace record"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioCatalog, EveryScenarioIsDescribedAndValid) {
  RegisterBenchScenarios();
  for (const exp::Scenario& s :
       exp::ScenarioRegistry::Instance().scenarios()) {
    EXPECT_FALSE(s.title.empty()) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.run)) << s.name;
    // Every base must survive the registry-backed validation the run
    // path applies.
    EXPECT_NO_THROW(s.base.system.Validate()) << s.name;
    EXPECT_NO_THROW(s.base.workload.Validate()) << s.name;
  }
}

TEST(ScenarioCatalog, UnknownNameSuggestsNearest) {
  RegisterBenchScenarios();
  try {
    exp::ScenarioRegistry::Instance().At("fig8");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("fig08"), std::string::npos)
        << e.what();
  }
}

TEST(RunScenario, ResolvesOverridesThroughTheRegistry) {
  exp::Scenario s;
  s.name = "override_probe";
  s.title = "probe";
  s.description = "probe";
  core::ExperimentConfig seen;
  s.run = [&seen](const exp::ScenarioContext& ctx) {
    seen = ctx.config;
    return exp::ScenarioResult{};
  };
  exp::ScenarioOptions options = SmallOptions(10);
  options.seed = 7;
  RunScenario(s, options,
              {{"system_class", "db_server"},
               {"use_lock_manager", "true"},
               {"page_replacement", "gclock"},
               {"event_queue", "calendar_queue"},
               {"num_objects", "1234"},
               {"p_update", "0.25"},
               {"p_set", "0.0"},
               {"p_scan", "0.25"}});
  EXPECT_EQ(seen.system.system_class, core::SystemClass::kDbServer);
  EXPECT_TRUE(seen.system.use_lock_manager);
  EXPECT_EQ(seen.system.page_replacement,
            storage::ReplacementPolicy::kGclock);
  EXPECT_EQ(seen.system.event_queue, desp::EventQueueKind::kCalendar);
  EXPECT_EQ(seen.workload.num_objects, 1234u);
  EXPECT_DOUBLE_EQ(seen.workload.p_update, 0.25);
  EXPECT_EQ(seen.replications, options.replications);
  EXPECT_EQ(seen.base_seed, 7u);
}

TEST(RunScenario, RejectsUnknownAndOutOfRangeOverrides) {
  exp::Scenario s;
  s.name = "override_probe";
  s.title = "probe";
  s.description = "probe";
  s.run = [](const exp::ScenarioContext&) { return exp::ScenarioResult{}; };
  EXPECT_THROW(RunScenario(s, SmallOptions(10), {{"buffer_page", "10"}}),
               util::Error);
  EXPECT_THROW(RunScenario(s, SmallOptions(10), {{"page_size", "100"}}),
               util::Error);
  // The run path validates the resolved config, so an override that
  // breaks a cross-field constraint (probabilities summing to 1) fails
  // before any simulation runs.
  EXPECT_THROW(RunScenario(s, SmallOptions(10), {{"p_set", "0.5"}}),
               util::Error);
}

TEST(RunScenario, RejectsOverridesTheScenarioWouldDiscard) {
  RegisterBenchScenarios();
  const auto& registry = exp::ScenarioRegistry::Instance();
  // fig08 sweeps the cache itself: overriding buffer_pages would be
  // silently overwritten per memory point, so it is rejected up-front.
  EXPECT_THROW(RunScenario(registry.At("fig08"), SmallOptions(5),
                           {{"buffer_pages", "1000"}}),
               util::Error);
  // The SYSCLASS ablation compares the four architectures.
  EXPECT_THROW(RunScenario(registry.At("ablation_sysclass"), SmallOptions(5),
                           {{"system_class", "db_server"}}),
               util::Error);
  // The VM-model ablation runs only the emulator: system-domain
  // overrides would be ignored, workload ones still apply.
  EXPECT_THROW(RunScenario(registry.At("ablation_vm_model"), SmallOptions(5),
                           {{"page_size", "8192"}}),
               util::Error);
}

// --- Parity: `voodb run` vs the legacy bench code path ----------------------
//
// The legacy binaries froze their workload and system configuration in
// code and called the sweep directly.  The catalog path must reproduce
// their metrics bit-identically under identical seeds.

TEST(ScenarioParity, Fig08MatchesLegacyBenchPath) {
  RegisterBenchScenarios();
  const exp::Scenario& s = exp::ScenarioRegistry::Instance().At("fig08");
  const uint64_t transactions = 20;
  const exp::ScenarioResult via_catalog =
      RunScenario(s, SmallOptions(transactions));

  // Exactly what bench_fig08_o2_cache_size hard-wired before the
  // redesign: the NC=50 / NO=20000 OCB base, the O2 preset rescaled per
  // memory point, paper's six points.
  ocb::OcbParameters workload;  // Table 5 defaults
  workload.num_classes = 50;
  workload.num_objects = 20000;
  const std::vector<FigurePoint> legacy = RunMemorySweep(
      SmallRunOptions(transactions), TargetSystem::kO2, workload,
      core::SystemCatalog::O2WithCache(16.0), MemoryPoints(),
      "fig08 legacy parity", std::vector<double>(6, 0.0),
      std::vector<double>(6, 0.0));

  ASSERT_EQ(legacy.size(), 6u);
  for (const FigurePoint& point : legacy) {
    const std::string key = "figure/" + point.x;
    ASSERT_EQ(via_catalog.count(key + "/benchmark/mean"), 1u) << point.x;
    EXPECT_EQ(via_catalog.at(key + "/benchmark/mean"), point.bench.mean)
        << point.x;
    EXPECT_EQ(via_catalog.at(key + "/benchmark/hw"), point.bench.half_width)
        << point.x;
    EXPECT_EQ(via_catalog.at(key + "/simulation/mean"), point.sim.mean)
        << point.x;
    EXPECT_EQ(via_catalog.at(key + "/simulation/hw"), point.sim.half_width)
        << point.x;
    EXPECT_GT(point.bench.mean, 0.0) << point.x;
    EXPECT_GT(point.sim.mean, 0.0) << point.x;
  }
}

TEST(ScenarioParity, Table6MatchesLegacyBenchPath) {
  RegisterBenchScenarios();
  const exp::Scenario& s = exp::ScenarioRegistry::Instance().At("table6");
  const uint64_t transactions = 10;
  const exp::ScenarioResult via_catalog =
      RunScenario(s, SmallOptions(transactions));

  // Exactly what bench_table6_dstc_midsize hard-wired: the DSTC hot-set
  // workload on the mid-sized base, Texas with 64 MB.
  ocb::OcbParameters workload;
  workload.num_classes = 50;
  workload.num_objects = 20000;
  workload.hierarchy_depth = 3;
  workload.root_region = 30;
  const DstcComparison legacy = RunDstcExperiment(
      SmallRunOptions(transactions), 64.0, workload,
      core::SystemCatalog::TexasWithMemory(64.0));

  const std::pair<const char*, const DstcAggregate*> sides[] = {
      {"benchmark", &legacy.bench}, {"simulation", &legacy.sim}};
  for (const auto& [series, agg] : sides) {
    const std::string key = std::string("/") + series + "/mean";
    EXPECT_EQ(via_catalog.at("dstc/pre_clustering_ios" + key),
              agg->pre.mean);
    EXPECT_EQ(via_catalog.at("dstc/clustering_overhead_ios" + key),
              agg->overhead.mean);
    EXPECT_EQ(via_catalog.at("dstc/post_clustering_ios" + key),
              agg->post.mean);
    EXPECT_EQ(via_catalog.at("dstc/gain" + key), agg->gain.mean);
    EXPECT_EQ(via_catalog.at("dstc/clusters" + key), agg->clusters.mean);
    EXPECT_EQ(via_catalog.at("dstc/mean_cluster_size" + key),
              agg->cluster_size.mean);
    EXPECT_GT(agg->pre.mean, 0.0);
  }
}

}  // namespace
}  // namespace voodb::bench
