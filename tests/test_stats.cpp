/// \file test_stats.cpp
/// \brief Tests for the statistics collectors and the paper's §4.2.2
/// confidence-interval / pilot-study machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "desp/stats.hpp"
#include "util/check.hpp"

namespace voodb::desp {
namespace {

TEST(Tally, EmptyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
}

TEST(Tally, HandComputedMoments) {
  Tally t;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.Add(v);
  EXPECT_EQ(t.count(), 8u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
  EXPECT_DOUBLE_EQ(t.sum(), 40.0);
}

TEST(Tally, SingleObservation) {
  Tally t;
  t.Add(3.5);
  EXPECT_DOUBLE_EQ(t.mean(), 3.5);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), 3.5);
  EXPECT_DOUBLE_EQ(t.max(), 3.5);
}

TEST(Tally, MergeMatchesSequential) {
  Tally all;
  Tally a;
  Tally b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i;
    all.Add(v);
    (i % 3 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Tally, MergeWithEmpty) {
  Tally a;
  a.Add(1.0);
  Tally empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw(0.0, 5.0);
  EXPECT_DOUBLE_EQ(tw.TimeAverage(10.0), 5.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw(0.0, 0.0);
  tw.Update(4.0, 10.0);  // 0 for [0,4), 10 from t=4
  // Average over [0, 8] = (0*4 + 10*4) / 8 = 5.
  EXPECT_DOUBLE_EQ(tw.TimeAverage(8.0), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 10.0);
  EXPECT_DOUBLE_EQ(tw.max(), 10.0);
}

TEST(TimeWeighted, MultipleSteps) {
  TimeWeighted tw(0.0, 1.0);
  tw.Update(2.0, 3.0);
  tw.Update(5.0, 0.0);
  // [0,2):1, [2,5):3, [5,10):0 -> (2 + 9 + 0) / 10 = 1.1
  EXPECT_NEAR(tw.TimeAverage(10.0), 1.1, 1e-12);
}

TEST(TimeWeighted, RejectsTimeTravel) {
  TimeWeighted tw(5.0, 0.0);
  tw.Update(6.0, 1.0);
  EXPECT_THROW(tw.Update(5.5, 2.0), util::Error);
}

TEST(StudentConfidenceInterval, MatchesHandComputation) {
  // 10 observations, sample sd sigma: h = t(9, 0.975) * sigma / sqrt(10).
  Tally t;
  for (double v : {10, 12, 9, 11, 10, 13, 8, 10, 11, 9}) t.Add(v);
  const ConfidenceInterval ci = StudentConfidenceInterval(t, 0.95);
  EXPECT_NEAR(ci.mean, 10.3, 1e-12);
  const double expected_h = 2.262 * t.stddev() / std::sqrt(10.0);
  EXPECT_NEAR(ci.half_width, expected_h, 1e-3);
  EXPECT_TRUE(ci.Contains(10.3));
  EXPECT_NEAR(ci.lower() + ci.upper(), 2 * ci.mean, 1e-12);
}

TEST(StudentConfidenceInterval, HigherLevelIsWider) {
  Tally t;
  for (int i = 0; i < 20; ++i) t.Add(i);
  const auto ci95 = StudentConfidenceInterval(t, 0.95);
  const auto ci99 = StudentConfidenceInterval(t, 0.99);
  EXPECT_GT(ci99.half_width, ci95.half_width);
}

TEST(StudentConfidenceInterval, NeedsOneObservation) {
  const Tally empty;
  EXPECT_THROW(StudentConfidenceInterval(empty), util::Error);
}

TEST(StudentConfidenceInterval, SingleObservationHasInfiniteHalfWidth) {
  // One observation leaves zero degrees of freedom: the mean is known but
  // the interval must be the whole real line, not an exception (callers
  // like the JSON reporter render it as "unknown precision").
  Tally t;
  t.Add(7.5);
  const ConfidenceInterval ci = StudentConfidenceInterval(t, 0.99);
  EXPECT_DOUBLE_EQ(ci.mean, 7.5);
  EXPECT_TRUE(std::isinf(ci.half_width));
  EXPECT_DOUBLE_EQ(ci.level, 0.99);
  EXPECT_TRUE(ci.Contains(1e300));
}

TEST(StudentConfidenceInterval, RejectsBadLevel) {
  Tally t;
  t.Add(1.0);
  t.Add(2.0);
  EXPECT_THROW(StudentConfidenceInterval(t, 0.0), util::Error);
  EXPECT_THROW(StudentConfidenceInterval(t, 1.0), util::Error);
}

TEST(AdditionalReplications, PaperFormula) {
  // n* = n.(h/h*)^2 total; additional = total - n.
  // Pilot n=10, h=4, target h*=2 -> total 40 -> 30 additional.
  EXPECT_EQ(AdditionalReplications(10, 4.0, 2.0), 30u);
  // Already precise enough: no additional replications.
  EXPECT_EQ(AdditionalReplications(10, 1.0, 2.0), 0u);
  // Equal: 0.
  EXPECT_EQ(AdditionalReplications(10, 2.0, 2.0), 0u);
}

TEST(AdditionalReplications, RoundsUp) {
  // 10 * (3/2)^2 = 22.5 -> 23 total -> 13 additional.
  EXPECT_EQ(AdditionalReplications(10, 3.0, 2.0), 13u);
}

TEST(AdditionalReplications, RejectsBadInput) {
  EXPECT_THROW(AdditionalReplications(1, 1.0, 1.0), util::Error);
  EXPECT_THROW(AdditionalReplications(10, 1.0, 0.0), util::Error);
  EXPECT_THROW(AdditionalReplications(10, -1.0, 1.0), util::Error);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(AdditionalReplications(10, inf, 1.0), util::Error);
  EXPECT_THROW(AdditionalReplications(10, 1.0, inf), util::Error);
  EXPECT_THROW(AdditionalReplications(10, std::nan(""), 1.0), util::Error);
}

TEST(AdditionalReplications, ZeroPilotHalfWidthNeedsNothing) {
  // A zero-variance pilot is already infinitely precise.
  EXPECT_EQ(AdditionalReplications(10, 0.0, 1.0), 0u);
}

TEST(AdditionalReplications, IgnoresFloatingPointNoiseAboveTarget) {
  // A half-width one ulp above the target must not demand an extra
  // replication (regression: ceil() used to round the noise up to 1).
  const double target = 2.0;
  const double noisy = std::nextafter(target, 3.0);
  EXPECT_EQ(AdditionalReplications(10, noisy, target), 0u);
}

TEST(AdditionalReplications, ClampsHugeRatiosWithoutOverflow) {
  // pilot_h / target_h can overflow n.(h/h*)^2 past uint64_t; the cast
  // used to be undefined behaviour.  The result must be a huge but sane
  // count that callers can min() against their max_n.
  const uint64_t extra = AdditionalReplications(10, 1.0, 1e-200);
  EXPECT_GT(extra, 1u << 30);
  EXPECT_LE(extra, static_cast<uint64_t>(9.0e15));
  // Still monotone near the clamp boundary.
  EXPECT_GE(AdditionalReplications(10, 1.0, 1e-9),
            AdditionalReplications(10, 1.0, 1e-6));
}

TEST(TallyDeltaSince, RecoversPhaseMoments) {
  // Chan's combining formula inverted: the delta of a run-cumulative
  // tally against an earlier snapshot reports exactly the phase's count
  // and (to FP accuracy) its mean and variance.
  Tally t;
  for (double v : {3.0, 7.0, 11.0}) t.Add(v);
  const Tally snapshot = t;
  Tally phase;
  for (double v : {2.0, 20.0, 8.0, 14.0}) {
    t.Add(v);
    phase.Add(v);
  }
  const Tally delta = t.DeltaSince(snapshot);
  EXPECT_EQ(delta.count(), 4u);
  EXPECT_NEAR(delta.mean(), phase.mean(), 1e-12);
  EXPECT_NEAR(delta.variance(), phase.variance(), 1e-9);
  // min/max are not recoverable from moments: run-cumulative by contract.
  EXPECT_DOUBLE_EQ(delta.min(), 2.0);
  EXPECT_DOUBLE_EQ(delta.max(), 20.0);
}

TEST(TallyDeltaSince, EmptyStartAndEmptyPhase) {
  Tally t;
  const Tally empty;
  for (double v : {1.0, 2.0}) t.Add(v);
  const Tally from_empty = t.DeltaSince(empty);
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.mean(), 1.5);
  const Tally no_phase = t.DeltaSince(t);
  EXPECT_EQ(no_phase.count(), 0u);
  EXPECT_DOUBLE_EQ(no_phase.mean(), 0.0);
}

TEST(TallyDeltaSince, RejectsLaterSnapshot) {
  Tally t;
  t.Add(1.0);
  Tally later = t;
  later.Add(2.0);
  EXPECT_THROW(t.DeltaSince(later), util::Error);
}

}  // namespace
}  // namespace voodb::desp
