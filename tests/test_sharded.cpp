// ShardedVoodb: N hash-partitioned VOODB stacks on the conservative
// parallel kernel.  The load-bearing property is the identity contract —
// byte-identical metrics and event digests at any sim_threads value.
#include <gtest/gtest.h>

#include <cstring>

#include "exp/executor.hpp"
#include "ocb/object_base.hpp"
#include "util/check.hpp"
#include "voodb/sharded.hpp"

namespace voodb::core {
namespace {

ocb::OcbParameters SmallWorkload() {
  ocb::OcbParameters p;
  p.num_classes = 5;
  p.num_objects = 400;
  p.think_time_ms = 1.0;
  return p;
}

VoodbConfig ShardConfig(uint32_t shards, double multi_partition_pct) {
  VoodbConfig cfg;
  cfg.shards = shards;
  cfg.multi_partition_pct = multi_partition_pct;
  cfg.buffer_pages = 64;
  cfg.num_users = 3;
  cfg.network_throughput_mbps = 1.0;
  return cfg;
}

struct RunResult {
  PhaseMetrics merged;
  std::vector<PhaseMetrics> per_shard;
  uint64_t digest = 0;
  uint64_t remote = 0;
  uint64_t windows = 0;
};

RunResult RunSharded(uint32_t shards, double mp_pct, size_t threads,
                     uint64_t transactions = 40) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  ShardedVoodb sys(ShardConfig(shards, mp_pct), &base, /*seed=*/7);
  RunResult r;
  if (threads > 1) {
    exp::ThreadPool pool({threads});
    r.merged = sys.Run(transactions, &pool);
  } else {
    r.merged = sys.Run(transactions);
  }
  r.per_shard = sys.shard_metrics();
  r.digest = sys.TraceDigest();
  r.remote = sys.remote_subtxns();
  r.windows = sys.kernel().Windows();
  return r;
}

void ExpectBitIdentical(const PhaseMetrics& a, const PhaseMetrics& b) {
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.object_accesses, b.object_accesses);
  EXPECT_EQ(a.total_ios, b.total_ios);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_requests, b.buffer_requests);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  // Doubles compared as bits: "close" is not the contract.
  EXPECT_EQ(std::memcmp(&a.sim_time_ms, &b.sim_time_ms, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.mean_response_ms, &b.mean_response_ms,
                        sizeof(double)),
            0);
}

TEST(ShardedVoodb, SingleShardRunsAndMergesTrivially) {
  const RunResult r = RunSharded(1, 0.0, 1);
  EXPECT_EQ(r.merged.transactions, 40u);
  EXPECT_EQ(r.per_shard.size(), 1u);
  EXPECT_EQ(r.remote, 0u);
  EXPECT_GT(r.merged.total_ios, 0u);
}

TEST(ShardedVoodb, ShardsRunIndependentStacksAndMetricsSum) {
  const RunResult r = RunSharded(4, 0.0, 1);
  EXPECT_EQ(r.per_shard.size(), 4u);
  // No multi-partition traffic: each shard commits its own 40.
  EXPECT_EQ(r.merged.transactions, 4u * 40u);
  uint64_t ios = 0;
  for (const PhaseMetrics& m : r.per_shard) ios += m.total_ios;
  EXPECT_EQ(r.merged.total_ios, ios);
  EXPECT_EQ(r.remote, 0u);
}

TEST(ShardedVoodb, MultiPartitionTransactionsCrossShards) {
  const RunResult r = RunSharded(4, 0.5, 1);
  // Roughly half of 4*40 home transactions spawn a remote sub-txn; the
  // sub-transactions commit on their serving shard, so they are counted.
  EXPECT_GT(r.remote, 20u);
  EXPECT_EQ(r.merged.transactions, 4u * 40u + r.remote);
  // Every request leg crossed the network.
  EXPECT_GT(r.merged.network_bytes, 0u);
  EXPECT_GT(r.windows, 1u);
}

TEST(ShardedVoodb, BitIdenticalAcrossThreadCounts) {
  const RunResult serial = RunSharded(4, 0.4, 1);
  for (size_t threads : {2u, 4u, 8u}) {
    const RunResult pooled = RunSharded(4, 0.4, threads);
    SCOPED_TRACE(threads);
    EXPECT_EQ(pooled.digest, serial.digest);
    EXPECT_EQ(pooled.remote, serial.remote);
    EXPECT_EQ(pooled.windows, serial.windows);
    ExpectBitIdentical(pooled.merged, serial.merged);
    ASSERT_EQ(pooled.per_shard.size(), serial.per_shard.size());
    for (size_t s = 0; s < serial.per_shard.size(); ++s) {
      ExpectBitIdentical(pooled.per_shard[s], serial.per_shard[s]);
    }
  }
}

TEST(ShardedVoodb, ConsecutivePhasesStayDeterministic) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  auto run_two_phases = [&](size_t threads) {
    ShardedVoodb sys(ShardConfig(2, 0.25), &base, /*seed=*/11);
    exp::ThreadPool pool({threads});
    exp::ThreadPool* p = threads > 1 ? &pool : nullptr;
    const PhaseMetrics first = sys.Run(30, p);
    const PhaseMetrics second = sys.Run(30, p);
    return std::make_pair(first.total_ios + second.total_ios,
                          sys.TraceDigest());
  };
  const auto serial = run_two_phases(1);
  const auto pooled = run_two_phases(4);
  EXPECT_EQ(serial.first, pooled.first);
  EXPECT_EQ(serial.second, pooled.second);
}

TEST(ShardedVoodb, MergedMetricRegistrySnapshotsInShardOrder) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  ShardedVoodb sys(ShardConfig(2, 0.0), &base, /*seed=*/3);
  sys.Run(20);
  const obs::MetricSnapshot merged = sys.MergedMetrics();
  // Counters from both shards folded: the merged I/O counter matches the
  // per-shard metric sum.
  const auto reads = merged.counters.find("io.reads");
  const auto writes = merged.counters.find("io.writes");
  ASSERT_NE(reads, merged.counters.end());
  ASSERT_NE(writes, merged.counters.end());
  uint64_t ios = 0;
  for (const PhaseMetrics& m : sys.shard_metrics()) ios += m.total_ios;
  EXPECT_EQ(reads->second + writes->second, ios);
}

TEST(ShardedVoodb, ProfilerSpansEveryPartition) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig cfg = ShardConfig(2, 0.25);
  cfg.observe = true;
  ShardedVoodb sys(cfg, &base, /*seed=*/5);
  sys.Run(20);
  ASSERT_NE(sys.profiler(), nullptr);
  EXPECT_GT(sys.profiler()->total_events(), 0u);
  // Both partitions contributed (the merged table is name-keyed; the
  // totals span shard0 and shard1).
  EXPECT_EQ(sys.profiler()->total_events(),
            sys.kernel().ExecutedEvents());
}

TEST(ShardedVoodb, RejectsConfigurationsTheKernelCannotDrain) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallWorkload());
  VoodbConfig hazard = ShardConfig(2, 0.0);
  hazard.failure_mtbf_ms = 1000.0;  // re-arms forever: cannot drain
  EXPECT_THROW(ShardedVoodb(hazard, &base, 1), util::Error);

  VoodbConfig tracing = ShardConfig(2, 0.0);
  tracing.trace_record = true;
  tracing.trace_path = "x.vtrc";
  EXPECT_THROW(ShardedVoodb(tracing, &base, 1), util::Error);

  VoodbConfig tiny = ShardConfig(128, 0.0);  // 400/128 < 5 classes
  EXPECT_THROW(ShardedVoodb(tiny, &base, 1), util::Error);
}

}  // namespace
}  // namespace voodb::core
