/// \file test_exp_executor.cpp
/// \brief Tests for the experiment-farm thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exp/executor.hpp"
#include "util/check.hpp"

namespace voodb::exp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool({4, 16});
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ++ran; }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool({0, 4});
  EXPECT_EQ(pool.thread_count(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPool, BoundedQueueBlocksInsteadOfGrowing) {
  // One worker, capacity 2: 50 submissions must all run even though the
  // producer outpaces the consumer (Submit blocks at the bound).
  ThreadPool pool({1, 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++ran;
    }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, CancelDropsQueuedTasksAndRejectsNewOnes) {
  ThreadPool pool({1, 64});
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so everything else stays queued.
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release) std::this_thread::yield();
  }));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ++ran; }));
  }
  pool.Cancel();
  release = true;
  pool.Wait();
  EXPECT_EQ(ran.load(), 0);  // queued tasks were dropped
  EXPECT_TRUE(pool.cancelled());
  EXPECT_FALSE(pool.Submit([&ran] { ++ran; }));
}

TEST(ThreadPool, WaitReturnsImmediatelyWhenIdle) {
  ThreadPool pool({2, 4});
  pool.Wait();  // must not hang on an empty pool
  SUCCEED();
}

TEST(ThreadPool, RejectsBadConfiguration) {
  EXPECT_THROW(ThreadPool({2, 0}), util::Error);
  ThreadPool pool({1, 1});
  EXPECT_THROW(pool.Submit(nullptr), util::Error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool({2, 32});
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace voodb::exp
