/// \file test_cross_validation.cpp
/// \brief Property sweep of the paper's central claim: the VOODB
/// discrete-event model and the direct-execution emulators agree on the
/// mean number of I/Os across base sizes, architectures and memory
/// budgets — not just at the figures' specific points.
#include <gtest/gtest.h>

#include "desp/random.hpp"
#include "emu/o2_emulator.hpp"
#include "emu/texas_emulator.hpp"
#include "ocb/workload.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

namespace voodb {
namespace {

struct CrossCase {
  bool o2;           // O2 page server vs Texas store
  uint64_t objects;  // base size
  double memory_mb;  // cache / main memory budget
};

std::string CaseName(const ::testing::TestParamInfo<CrossCase>& info) {
  return std::string(info.param.o2 ? "O2" : "Texas") + "_no" +
         std::to_string(info.param.objects) + "_mb" +
         std::to_string(static_cast<int>(info.param.memory_mb));
}

class CrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossValidation, SimulationAgreesWithEmulator) {
  const CrossCase c = GetParam();
  ocb::OcbParameters wl;
  wl.num_classes = 20;
  wl.num_objects = c.objects;
  wl.seed = 1999;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  constexpr uint64_t kTransactions = 150;

  double bench = 0.0;
  if (c.o2) {
    emu::O2Config cfg;
    cfg.cache_pages =
        static_cast<uint64_t>(c.memory_mb * 1024 * 1024 / 4096);
    emu::O2Emulator emu_sys(cfg, &base, 5);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    bench = static_cast<double>(
        emu_sys.RunTransactions(gen, kTransactions).total_ios);
  } else {
    emu::TexasConfig cfg;
    cfg.memory_pages = emu::TexasConfig::FramesForMemory(c.memory_mb, 4096);
    emu::TexasEmulator emu_sys(cfg, &base, 5);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5));
    bench = static_cast<double>(
        emu_sys.RunTransactions(gen, kTransactions).total_ios);
  }

  core::VoodbConfig cfg = c.o2
                              ? core::SystemCatalog::O2WithCache(c.memory_mb)
                              : core::SystemCatalog::TexasWithMemory(
                                    c.memory_mb);
  core::VoodbSystem sys(cfg, &base, nullptr, 7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(7));
  const double sim = static_cast<double>(
      sys.RunTransactions(gen, kTransactions).total_ios);

  ASSERT_GT(bench, 0.0);
  // Different workload seeds on the two paths: agreement within 25 %
  // (the paper's own series differ by up to ~10-20 % in places).
  EXPECT_NEAR(sim / bench, 1.0, 0.25)
      << "bench=" << bench << " sim=" << sim;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossValidation,
    ::testing::Values(
        // Bases that fit their memory budget (cold-fault regime).
        CrossCase{true, 1000, 16.0}, CrossCase{false, 1000, 16.0},
        CrossCase{true, 3000, 16.0}, CrossCase{false, 3000, 16.0},
        // Bases that outgrow it (thrashing regime).
        CrossCase{true, 4000, 1.0}, CrossCase{false, 4000, 1.0},
        CrossCase{true, 4000, 0.5}, CrossCase{false, 4000, 0.5}),
    CaseName);

}  // namespace
}  // namespace voodb
