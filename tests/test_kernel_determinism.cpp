/// \file test_kernel_determinism.cpp
/// \brief Bit-identity of full VOODB experiments across event-queue
/// backends and farm thread counts.
///
/// The kernel refactor's contract: the event-list backend is a pure
/// performance knob.  These tests pin it down two ways —
///
///  1. the event *trace* (first 10k fired (time, priority, seq) keys) of
///     a full VOODB experiment replication is identical under every
///     backend, i.e. the kernels execute the very same event sequence
///     (this is the old-vs-new regression: the binary heap is the
///     reference semantics of the pre-refactor `std::priority_queue`
///     kernel, whose tie-breaking contract test_scheduler.cpp pins);
///  2. the reduced `PhaseMetrics`/replication statistics are bit-equal
///     across every (backend × thread count) combination.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/scheduler.hpp"
#include "ocb/workload.hpp"
#include "voodb/experiment.hpp"
#include "voodb/system.hpp"

namespace voodb::core {
namespace {

const desp::EventQueueKind kAllKinds[] = {
    desp::EventQueueKind::kBinaryHeap,
    desp::EventQueueKind::kQuaternaryHeap,
    desp::EventQueueKind::kCalendar,
};

ExperimentConfig SmallExperiment() {
  ExperimentConfig ec;
  ec.system.system_class = SystemClass::kPageServer;
  ec.system.page_size = 1024;
  ec.system.buffer_pages = 24;
  ec.system.multiprogramming_level = 4;
  ec.system.num_users = 4;
  ec.system.failure_mtbf_ms = 40000.0;  // exercise Cancel/re-arm paths
  ec.workload.num_classes = 8;
  ec.workload.num_objects = 400;
  ec.workload.max_refs_per_class = 3;
  ec.workload.base_instance_size = 60;
  ec.workload.hot_transactions = 60;
  ec.workload.cold_transactions = 10;
  ec.workload.seed = 71;
  ec.replications = 4;
  return ec;
}

struct Trace {
  std::vector<desp::EventKey> keys;
  static constexpr size_t kLimit = 10000;
  static void Record(void* ctx, const desp::EventKey& key) {
    auto* self = static_cast<Trace*>(ctx);
    if (self->keys.size() < kLimit) self->keys.push_back(key);
  }
};

/// Runs one replication of the experiment with `kind`, capturing the
/// fired-event trace and the hot-phase metrics.
PhaseMetrics TracedRun(desp::EventQueueKind kind, const ocb::ObjectBase& base,
                       Trace* trace) {
  ExperimentConfig ec = SmallExperiment();
  ec.system.event_queue = kind;
  VoodbSystem system(ec.system, &base, nullptr, /*seed=*/1234);
  system.scheduler().SetTraceHook(&Trace::Record, trace);
  ocb::WorkloadGenerator workload(&base, desp::RandomStream(1234).Derive(1));
  system.RunTransactions(workload, ec.workload.cold_transactions);
  return system.RunTransactions(workload, ec.workload.hot_transactions);
}

// Bit-compare doubles (catches even sign/NaN differences).
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const desp::LogHistogram& a, const desp::LogHistogram& b) {
  return a.buckets() == b.buckets() && a.underflow() == b.underflow() &&
         a.overflow() == b.overflow() && a.count() == b.count() &&
         BitEqual(a.mean(), b.mean()) && BitEqual(a.stddev(), b.stddev()) &&
         BitEqual(a.min(), b.min()) && BitEqual(a.max(), b.max());
}

bool BitEqual(const PhaseMetrics& a, const PhaseMetrics& b) {
  return a.transactions == b.transactions &&
         a.object_accesses == b.object_accesses &&
         a.transaction_restarts == b.transaction_restarts &&
         a.total_ios == b.total_ios && a.reads == b.reads &&
         a.writes == b.writes && a.buffer_hits == b.buffer_hits &&
         a.buffer_requests == b.buffer_requests &&
         a.network_bytes == b.network_bytes &&
         BitEqual(a.sim_time_ms, b.sim_time_ms) &&
         BitEqual(a.mean_response_ms, b.mean_response_ms) &&
         BitEqual(a.max_response_ms, b.max_response_ms) &&
         BitEqual(a.response_histogram, b.response_histogram) &&
         BitEqual(a.lock_wait_histogram, b.lock_wait_histogram) &&
         BitEqual(a.disk_service_histogram, b.disk_service_histogram);
}

TEST(KernelDeterminism, EventTraceIsIdenticalAcrossBackends) {
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(SmallExperiment().workload);

  Trace reference;
  const PhaseMetrics reference_metrics =
      TracedRun(desp::EventQueueKind::kBinaryHeap, base, &reference);
  ASSERT_GE(reference.keys.size(), 1000u)
      << "experiment too small to exercise the kernel";

  for (desp::EventQueueKind kind : kAllKinds) {
    Trace trace;
    const PhaseMetrics metrics = TracedRun(kind, base, &trace);
    ASSERT_EQ(trace.keys.size(), reference.keys.size())
        << desp::ToString(kind);
    for (size_t i = 0; i < trace.keys.size(); ++i) {
      ASSERT_EQ(trace.keys[i].time, reference.keys[i].time)
          << desp::ToString(kind) << " event " << i;
      ASSERT_EQ(trace.keys[i].priority, reference.keys[i].priority)
          << desp::ToString(kind) << " event " << i;
      ASSERT_EQ(trace.keys[i].seq, reference.keys[i].seq)
          << desp::ToString(kind) << " event " << i;
    }
    EXPECT_TRUE(BitEqual(metrics, reference_metrics)) << desp::ToString(kind);
  }
}

TEST(KernelDeterminism, ExperimentBitIdenticalAcrossBackendsAndThreads) {
  const ExperimentConfig base_config = SmallExperiment();
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(base_config.workload);

  // Reference: binary heap, serial farm.
  ExperimentConfig ref = base_config;
  ref.threads = 1;
  const desp::ReplicationResult reference =
      Experiment::RunOnBase(ref, base);

  for (desp::EventQueueKind kind : kAllKinds) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ExperimentConfig ec = base_config;
      ec.system.event_queue = kind;
      ec.threads = threads;
      const desp::ReplicationResult result = Experiment::RunOnBase(ec, base);
      for (const std::string& metric : reference.MetricNames()) {
        const desp::Tally& want = reference.Metric(metric);
        const desp::Tally& got = result.Metric(metric);
        // Exact equality on every reduced statistic: scheduling order
        // (threads) and event-list backend must not leak into results.
        EXPECT_EQ(got.count(), want.count())
            << metric << " " << desp::ToString(kind) << " t" << threads;
        EXPECT_EQ(got.mean(), want.mean())
            << metric << " " << desp::ToString(kind) << " t" << threads;
        EXPECT_EQ(got.variance(), want.variance())
            << metric << " " << desp::ToString(kind) << " t" << threads;
        EXPECT_EQ(got.min(), want.min())
            << metric << " " << desp::ToString(kind) << " t" << threads;
        EXPECT_EQ(got.max(), want.max())
            << metric << " " << desp::ToString(kind) << " t" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace voodb::core
