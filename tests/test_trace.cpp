/// \file test_trace.cpp
/// \brief Tests for the access-trace subsystem: format round-trips,
/// corrupt/truncated input rejection, deterministic replay, Mattson MRC
/// exactness against real buffer simulations, and trace-as-workload
/// replay through the DES.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "desp/random.hpp"
#include "emu/o2_emulator.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "storage/buffer_manager.hpp"
#include "trace/mrc.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"
#include "trace/replayer.hpp"
#include "trace/workload.hpp"
#include "trace/writer.hpp"
#include "util/check.hpp"
#include "voodb/system.hpp"

namespace voodb::trace {
namespace {

std::stringstream BinaryStream() {
  return std::stringstream(std::ios::in | std::ios::out | std::ios::binary);
}

Header SmallHeader() {
  Header h;
  h.page_size = 4096;
  h.buffer_pages = 64;
  h.replacement_policy =
      static_cast<uint8_t>(storage::ReplacementPolicy::kLru);
  h.num_classes = 10;
  h.num_objects = 1000;
  h.num_pages = 400;
  h.seed = 7;
  return h;
}

TEST(TraceFormat, WriterReaderRoundTripIsBitIdentical) {
  // A stream exercising every record kind, multi-chunk lengths, and ids
  // that stress the zigzag delta coding (big jumps in both directions).
  std::vector<Record> original;
  desp::RandomStream rng(99);
  for (int t = 0; t < 40; ++t) {
    original.push_back({RecordKind::kTxnBegin,
                        static_cast<uint64_t>(t % 6), false});
    const int accesses = 1 + static_cast<int>(rng.UniformInt(0, 400));
    for (int a = 0; a < accesses; ++a) {
      const auto oid = static_cast<uint64_t>(rng.UniformInt(0, 999));
      const bool write = rng.Bernoulli(0.3);
      original.push_back({RecordKind::kObject, oid, write});
      original.push_back({RecordKind::kPage, oid * 37 % 4001, write});
    }
    original.push_back({RecordKind::kTxnEnd, 0, false});
  }
  ASSERT_GT(original.size(), kChunkRecords)  // forces multiple chunks
      << "test stream too short to cover chunk boundaries";

  std::stringstream ss = BinaryStream();
  Writer writer(&ss, SmallHeader());
  Recorder recorder(&writer);
  for (const Record& r : original) {
    switch (r.kind) {
      case RecordKind::kTxnBegin:
        recorder.OnTxnBegin(r.id);
        break;
      case RecordKind::kTxnEnd:
        recorder.OnTxnEnd();
        break;
      case RecordKind::kObject:
        recorder.OnObject(r.id, r.write);
        break;
      case RecordKind::kPage:
        recorder.OnPage(r.id, r.write);
        break;
    }
  }
  recorder.Flush();
  TraceCounters counters;
  counters.accesses = 123;
  counters.hits = 45;
  writer.Finish(counters);

  Reader reader(&ss);
  EXPECT_EQ(reader.header().num_records, original.size());
  EXPECT_EQ(reader.header().counters.accesses, 123u);
  EXPECT_EQ(reader.header().counters.hits, 45u);
  EXPECT_EQ(reader.header().page_size, 4096u);
  std::vector<Record> decoded;
  Record r;
  while (reader.Next(r)) decoded.push_back(r);
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(static_cast<int>(decoded[i].kind),
              static_cast<int>(original[i].kind))
        << i;
    EXPECT_EQ(decoded[i].id, original[i].id) << i;
    EXPECT_EQ(decoded[i].write, original[i].write) << i;
  }

  // Rewind replays the identical stream.
  reader.Rewind();
  size_t again = 0;
  while (reader.Next(r)) {
    EXPECT_EQ(r.id, decoded[again].id);
    ++again;
  }
  EXPECT_EQ(again, original.size());
}

TEST(TraceFormat, RejectsCorruptAndTruncatedInput) {
  // A valid finished trace to mutate.
  std::stringstream ss = BinaryStream();
  Writer writer(&ss, SmallHeader());
  Recorder recorder(&writer);
  for (int i = 0; i < 100; ++i) {
    recorder.OnPage(static_cast<uint64_t>(i % 17), false);
  }
  recorder.Flush();
  writer.Finish(TraceCounters{});
  const std::string good = ss.str();

  {  // Truncated header.
    std::stringstream s = BinaryStream();
    s.str(good.substr(0, sizeof(Header) / 2));
    EXPECT_THROW(Reader r(&s), util::Error);
  }
  {  // Bad magic.
    std::string bytes = good;
    bytes[0] = 'X';
    std::stringstream s = BinaryStream();
    s.str(bytes);
    EXPECT_THROW(Reader r(&s), util::Error);
  }
  {  // Unsupported version.
    std::string bytes = good;
    bytes[4] = static_cast<char>(99);
    std::stringstream s = BinaryStream();
    s.str(bytes);
    EXPECT_THROW(Reader r(&s), util::Error);
  }
  {  // Unfinished recording (flags bit cleared).
    std::string bytes = good;
    bytes[8] = 0;
    std::stringstream s = BinaryStream();
    s.str(bytes);
    EXPECT_THROW(Reader r(&s), util::Error);
  }
  {  // Truncated mid-chunk: header is intact, payload is cut short.
    std::stringstream s = BinaryStream();
    s.str(good.substr(0, good.size() - 20));
    Reader reader(&s);
    Record r;
    EXPECT_THROW(
        while (reader.Next(r)) {
        },
        util::Error);
  }
}

TEST(TraceReplay, ReproducesRecordedEmulatorCountersBitExactly) {
  ocb::OcbParameters params;
  params.num_classes = 10;
  params.num_objects = 2000;
  params.p_update = 0.2;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(params);

  for (const auto policy : {storage::ReplacementPolicy::kLru,
                            storage::ReplacementPolicy::kClock,
                            storage::ReplacementPolicy::kRandom}) {
    emu::O2Config cfg;
    cfg.cache_pages = 128;
    cfg.replacement = policy;
    std::stringstream ss = BinaryStream();
    emu::O2Emulator o2(cfg, &base, /*seed=*/11);
    {
      Writer writer(&ss, [&] {
        Header h = SmallHeader();
        h.buffer_pages = cfg.cache_pages;
        h.replacement_policy = static_cast<uint8_t>(policy);
        h.num_pages = o2.NumPages();
        h.seed = 11;
        return h;
      }());
      Recorder recorder(&writer);
      o2.SetRecorder(&recorder);
      ocb::WorkloadGenerator gen(&base, desp::RandomStream(11));
      o2.RunTransactions(gen, 300);
      recorder.Flush();
      writer.Finish(o2.TraceCountersNow());
    }
    Reader reader(&ss);
    const ReplayStats stats = ReplayPages(reader);
    EXPECT_TRUE(stats.Matches(reader.header().counters))
        << "policy " << ToString(policy) << ": replayed " << stats.hits
        << " hits vs recorded " << reader.header().counters.hits;
  }
}

TEST(TraceReplay, ReproducesRecordedSimulationCountersBitExactly) {
  ocb::OcbParameters params;
  params.num_classes = 10;
  params.num_objects = 1500;
  params.p_update = 0.3;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(params);

  const std::string path = "test_trace_sim.vtrc";
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.buffer_pages = 150;
  cfg.trace_record = true;
  cfg.trace_path = path;
  trace::TraceCounters recorded;
  {
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/5);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(5).Derive(1));
    sys.RunTransactions(gen, 200);
    recorded = sys.buffering_manager().TraceCountersNow();
    sys.FinishTrace();
    // The system stays usable after finalizing the trace: FinishTrace
    // detaches the recorder, so further phases neither throw nor append.
    sys.RunTransactions(gen, 200);
  }
  Reader reader(path);
  EXPECT_TRUE(reader.header().counters.accesses > 0);
  EXPECT_EQ(reader.header().counters.accesses, recorded.accesses);
  const ReplayStats stats = ReplayPages(reader);
  EXPECT_TRUE(stats.Matches(recorded))
      << "replayed " << stats.hits << "/" << stats.misses
      << " vs recorded " << recorded.hits << "/" << recorded.misses;
  std::remove(path.c_str());
}

TEST(TraceReplay, FlushOnCommitRecordingsAreMarkedNotVerifiable) {
  // flush_on_commit writes dirty pages back at commit — buffer events a
  // bare page-stream replay cannot see — so such recordings carry a
  // header flag that verification surfaces refuse.
  ocb::OcbParameters params;
  params.num_classes = 5;
  params.num_objects = 500;
  params.p_update = 0.5;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(params);
  const std::string path = "test_trace_flush.vtrc";
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.buffer_pages = 64;
  cfg.flush_on_commit = true;
  cfg.trace_record = true;
  cfg.trace_path = path;
  {
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/3);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(3).Derive(1));
    sys.RunTransactions(gen, 50);
  }
  Reader reader(path);
  EXPECT_NE(reader.header().flags & kFlagCommitFlush, 0u);
  EXPECT_FALSE(ReplayVerifiable(reader.header().flags));
  // A plain recording stays verifiable.
  EXPECT_TRUE(ReplayVerifiable(kFlagFinished));
  EXPECT_FALSE(ReplayVerifiable(kFlagFinished | kFlagVirtualMemory));
  EXPECT_FALSE(ReplayVerifiable(kFlagFinished | kFlagCrashHazard));
  std::remove(path.c_str());
}

TEST(TraceReplay, BufferDropDuringRecordingDisqualifiesVerification) {
  // A mid-recording buffer drop (clustering reorganization, an explicit
  // cold restart between phases) empties the cache outside the page
  // stream; the finished header must say so.
  ocb::OcbParameters params;
  params.num_classes = 5;
  params.num_objects = 500;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(params);
  const std::string path = "test_trace_drop.vtrc";
  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.buffer_pages = 64;
  cfg.trace_record = true;
  cfg.trace_path = path;
  {
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/4);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(4).Derive(1));
    sys.RunTransactions(gen, 30);
    sys.DropBuffer();
    sys.RunTransactions(gen, 30);
  }
  Reader reader(path);
  EXPECT_NE(reader.header().flags & kFlagBufferDrop, 0u);
  EXPECT_FALSE(ReplayVerifiable(reader.header().flags));
  std::remove(path.c_str());
}

TEST(TraceMrc, MatchesBufferManagerLruSimulationAtEverySize) {
  // A Zipf-skewed synthetic page stream with enough reuse structure to
  // exercise the Fenwick compaction, checked against real LRU buffers.
  desp::RandomStream rng(3);
  std::vector<uint64_t> pages;
  for (int i = 0; i < 30000; ++i) {
    pages.push_back(static_cast<uint64_t>(rng.Zipf(1200, 0.8)));
  }

  MrcAnalyzer analyzer;
  for (const uint64_t p : pages) analyzer.OnPage(p);
  const MrcResult mrc = analyzer.Finish();
  EXPECT_EQ(mrc.page_accesses, pages.size());

  for (const uint64_t capacity : {1ull, 2ull, 7ull, 32ull, 100ull, 375ull,
                                  1199ull, 1200ull, 5000ull}) {
    storage::BufferManager buffer(capacity,
                                  storage::ReplacementPolicy::kLru);
    std::vector<storage::PageIo> ios;
    for (const uint64_t p : pages) {
      ios.clear();
      buffer.AccessInto(p, false, ios);
    }
    EXPECT_EQ(mrc.HitsAt(capacity), buffer.stats().hits)
        << "capacity " << capacity;
    EXPECT_EQ(mrc.MissesAt(capacity), buffer.stats().misses)
        << "capacity " << capacity;
  }
  // The histogram accounts for every access: reuses + cold misses.
  uint64_t reuses = 0;
  for (size_t d = 1; d < mrc.reuse_histogram.size(); ++d) {
    reuses += mrc.reuse_histogram[d];
  }
  EXPECT_EQ(reuses + mrc.working_set_pages, mrc.page_accesses);
}

TEST(TraceWorkload, ReplaysRecordedTransactionsThroughTheSimulation) {
  ocb::OcbParameters params;
  params.num_classes = 8;
  params.num_objects = 1000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(params);
  const std::string path = "test_trace_workload.vtrc";

  core::VoodbConfig record_cfg;
  record_cfg.system_class = core::SystemClass::kCentralized;
  record_cfg.buffer_pages = 100;
  record_cfg.trace_record = true;
  record_cfg.trace_path = path;
  core::PhaseMetrics recorded;
  {
    core::VoodbSystem sys(record_cfg, &base, nullptr, /*seed=*/9);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(9).Derive(1));
    recorded = sys.RunTransactions(gen, 120);
  }

  // Re-run the DES with workload_source=trace: the replay draws the
  // recorded transactions, so the phase metrics reproduce bit-exactly.
  core::VoodbConfig replay_cfg;
  replay_cfg.system_class = core::SystemClass::kCentralized;
  replay_cfg.buffer_pages = 100;
  replay_cfg.workload_source = core::WorkloadSourceKind::kTrace;
  replay_cfg.trace_path = path;
  {
    core::VoodbSystem sys(replay_cfg, &base, nullptr, /*seed=*/9);
    ocb::WorkloadGenerator unused(&base, desp::RandomStream(1234));
    const core::PhaseMetrics replayed = sys.RunTransactions(unused, 120);
    EXPECT_EQ(replayed.transactions, recorded.transactions);
    EXPECT_EQ(replayed.object_accesses, recorded.object_accesses);
    EXPECT_EQ(replayed.total_ios, recorded.total_ios);
    EXPECT_EQ(replayed.buffer_hits, recorded.buffer_hits);
    EXPECT_EQ(replayed.buffer_requests, recorded.buffer_requests);
  }

  // A different buffer size replays the same logical workload with a
  // different hit pattern — record once, sweep anywhere.
  replay_cfg.buffer_pages = 10;
  {
    core::VoodbSystem sys(replay_cfg, &base, nullptr, /*seed=*/9);
    ocb::WorkloadGenerator unused(&base, desp::RandomStream(1234));
    const core::PhaseMetrics replayed = sys.RunTransactions(unused, 120);
    EXPECT_EQ(replayed.object_accesses, recorded.object_accesses);
    EXPECT_LT(replayed.buffer_hits, recorded.buffer_hits);
  }
  std::remove(path.c_str());
}

TEST(TraceWorkload, WrapsAroundWhenReplayOutlivesTheRecording) {
  std::stringstream ss = BinaryStream();
  {
    Writer writer(&ss, SmallHeader());
    Recorder recorder(&writer);
    for (int t = 0; t < 3; ++t) {
      recorder.OnTxnBegin(
          static_cast<uint64_t>(ocb::TransactionKind::kSimpleTraversal));
      recorder.OnObject(static_cast<uint64_t>(t), false);
      recorder.OnTxnEnd();
    }
    recorder.Flush();
    writer.Finish(TraceCounters{});
  }
  TraceWorkload workload(&ss);
  for (int i = 0; i < 8; ++i) {
    const ocb::Transaction txn = workload.Next();
    ASSERT_EQ(txn.accesses.size(), 1u);
    EXPECT_EQ(txn.accesses[0].oid, static_cast<ocb::Oid>(i % 3));
    EXPECT_EQ(txn.root, static_cast<ocb::Oid>(i % 3));
  }
  EXPECT_EQ(workload.transactions_replayed(), 8u);
}

TEST(TraceWorkload, RejectsTracesWithoutTransactionRecords) {
  std::stringstream ss = BinaryStream();
  {
    Writer writer(&ss, SmallHeader());
    Recorder recorder(&writer);
    recorder.OnPage(1, false);
    recorder.Flush();
    writer.Finish(TraceCounters{});
  }
  EXPECT_THROW(TraceWorkload workload(&ss), util::Error);
}

// --- Format v2: per-user transaction markers --------------------------------

TEST(TraceFormat, TxnMarkersCarryUserIdsAndNormalizeOnRead) {
  std::stringstream ss = BinaryStream();
  {
    Writer writer(&ss, SmallHeader());
    Recorder recorder(&writer);
    recorder.OnTxnBegin(3);  // default user = 0 (serial recordings)
    recorder.OnTxnEnd();
    recorder.OnTxnBegin(5, /*user=*/41);
    recorder.OnObject(7, true);
    recorder.OnTxnEnd();
    recorder.OnTxnBegin(2, /*user=*/70000);  // ids beyond 16 bits survive
    recorder.OnTxnEnd();
    recorder.Flush();
    writer.Finish(TraceCounters{});
  }
  Reader reader(&ss);
  EXPECT_EQ(reader.header().version, kFormatVersion);
  std::vector<Record> records;
  Record r;
  while (reader.Next(r)) records.push_back(r);
  ASSERT_EQ(records.size(), 7u);
  // The reader unpacks (user << 8 | kind): id is always the bare kind.
  EXPECT_EQ(records[0].id, 3u);
  EXPECT_EQ(records[0].user, 0u);
  EXPECT_EQ(records[2].id, 5u);
  EXPECT_EQ(records[2].user, 41u);
  EXPECT_EQ(records[3].id, 7u);     // non-marker records keep raw ids
  EXPECT_EQ(records[3].user, 0u);   // ... and carry no user
  EXPECT_EQ(records[5].id, 2u);
  EXPECT_EQ(records[5].user, 70000u);
}

TEST(TraceFormat, ReaderStillAcceptsVersion1Traces) {
  // A v1 trace is byte-identical to a v2 trace whose markers all carry
  // user 0, except for the header's version field — craft one by
  // patching it.
  std::stringstream ss = BinaryStream();
  {
    Writer writer(&ss, SmallHeader());
    Recorder recorder(&writer);
    recorder.OnTxnBegin(4);
    recorder.OnObject(11, false);
    recorder.OnTxnEnd();
    recorder.Flush();
    writer.Finish(TraceCounters{});
  }
  std::string bytes = ss.str();
  const uint32_t v1 = 1;
  std::memcpy(&bytes[offsetof(Header, version)], &v1, sizeof(v1));
  std::stringstream patched = BinaryStream();
  patched.str(bytes);
  Reader reader(&patched);
  EXPECT_EQ(reader.header().version, 1u);
  std::vector<Record> records;
  Record r;
  while (reader.Next(r)) records.push_back(r);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, RecordKind::kTxnBegin);
  EXPECT_EQ(records[0].id, 4u);
  EXPECT_EQ(records[0].user, 0u);
  // An unsupported future version is still rejected.
  const uint32_t v99 = 99;
  std::memcpy(&bytes[offsetof(Header, version)], &v99, sizeof(v99));
  std::stringstream future = BinaryStream();
  future.str(bytes);
  EXPECT_THROW(Reader bad(&future), util::Error);
}

TEST(TraceFormat, ConcurrentRecordingAttributesMarkersToUsers) {
  // A multi-user DES run interleaves markers; v2 makes each one carry
  // its issuing user so the interleaving is recoverable.
  core::VoodbConfig cfg;
  cfg.page_size = 1024;
  cfg.buffer_pages = 16;
  cfg.num_users = 3;
  cfg.multiprogramming_level = 3;
  const std::string path = "test_trace_users.vtrc";
  cfg.trace_record = true;
  cfg.trace_path = path;
  ocb::OcbParameters wl;
  wl.num_classes = 8;
  wl.num_objects = 200;
  wl.max_refs_per_class = 3;
  wl.base_instance_size = 50;
  wl.seed = 5;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
  {
    core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/21);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(21).Derive(1));
    sys.RunTransactions(gen, 30);
    sys.FinishTrace();
  }
  Reader reader(path);
  std::vector<uint32_t> users_seen;
  Record r;
  while (reader.Next(r)) {
    if (r.kind == RecordKind::kTxnBegin) users_seen.push_back(r.user);
  }
  ASSERT_EQ(users_seen.size(), 30u);
  // All three users issued transactions, ids within [0, num_users).
  std::set<uint32_t> distinct(users_seen.begin(), users_seen.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (const uint32_t user : users_seen) EXPECT_LT(user, 3u);
  std::remove(path.c_str());
}

// --- Format v3: abort markers -----------------------------------------------

TEST(TraceFormat, TxnAbortMarkersRoundTripAndReplayKeepsCommittedAttempt) {
  std::stringstream ss = BinaryStream();
  {
    Writer writer(&ss, SmallHeader());
    Recorder recorder(&writer);
    // One logical transaction, restarted once by concurrency control:
    // the first attempt touches {10, 11}, aborts, and the retry that
    // eventually commits touches {20, 21, 22}.
    recorder.OnTxnBegin(
        static_cast<uint64_t>(ocb::TransactionKind::kSimpleTraversal),
        /*user=*/7);
    recorder.OnObject(10, true);
    recorder.OnObject(11, false);
    recorder.OnTxnAbort();
    recorder.OnObject(20, false);
    recorder.OnObject(21, true);
    recorder.OnObject(22, false);
    recorder.OnTxnEnd();
    recorder.Flush();
    writer.Finish(TraceCounters{});
  }
  const std::string bytes = ss.str();

  {  // Reader pass: the marker survives the round trip, normalized.
    std::stringstream in = BinaryStream();
    in.str(bytes);
    Reader reader(&in);
    EXPECT_EQ(reader.header().version, kFormatVersion);
    std::vector<Record> records;
    Record r;
    while (reader.Next(r)) records.push_back(r);
    ASSERT_EQ(records.size(), 8u);
    EXPECT_EQ(records[0].kind, RecordKind::kTxnBegin);
    EXPECT_EQ(records[0].user, 7u);
    EXPECT_EQ(records[3].kind, RecordKind::kTxnAbort);
    EXPECT_EQ(records[3].id, 0u);    // markers carry no payload ...
    EXPECT_EQ(records[3].user, 0u);  // ... and no user field
    EXPECT_EQ(records[7].kind, RecordKind::kTxnEnd);
  }

  {  // Replay pass: only the committed attempt's accesses survive.
    std::stringstream in = BinaryStream();
    in.str(bytes);
    TraceWorkload workload(&in);
    const ocb::Transaction txn = workload.Next();
    ASSERT_EQ(txn.accesses.size(), 3u);
    EXPECT_EQ(txn.root, 20u);
    EXPECT_EQ(txn.accesses[0].oid, 20u);
    EXPECT_FALSE(txn.accesses[0].is_write);
    EXPECT_EQ(txn.accesses[1].oid, 21u);
    EXPECT_TRUE(txn.accesses[1].is_write);
    EXPECT_EQ(txn.accesses[2].oid, 22u);
    EXPECT_EQ(workload.transactions_replayed(), 1u);
  }
}

}  // namespace
}  // namespace voodb::trace
