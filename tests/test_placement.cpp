/// \file test_placement.cpp
/// \brief Tests for object-to-page placement and relocation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "ocb/object_base.hpp"
#include "storage/placement.hpp"
#include "util/check.hpp"

namespace voodb::storage {
namespace {

ocb::OcbParameters SmallParams() {
  ocb::OcbParameters p;
  p.num_classes = 8;
  p.num_objects = 300;
  p.max_refs_per_class = 3;
  p.base_instance_size = 100;
  p.seed = 5;
  return p;
}

/// Every object is placed exactly once and page contents match spans.
void CheckConsistency(const ocb::ObjectBase& base, const Placement& pl) {
  std::vector<int> seen(base.NumObjects(), 0);
  for (PageId page = 0; page < pl.NumPages(); ++page) {
    for (ocb::Oid oid : pl.ObjectsOn(page)) {
      ++seen[oid];
      EXPECT_EQ(pl.SpanOf(oid).first, page);
    }
  }
  for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
    EXPECT_EQ(seen[oid], 1) << "object " << oid;
    EXPECT_GE(pl.SpanOf(oid).count, 1u);
  }
}

/// Bytes stored on each page never exceed the page size.
void CheckPageCapacity(const ocb::ObjectBase& base, const Placement& pl,
                       double overhead) {
  for (PageId page = 0; page < pl.NumPages(); ++page) {
    uint64_t used = 0;
    for (ocb::Oid oid : pl.ObjectsOn(page)) {
      if (pl.SpanOf(oid).count > 1) continue;  // large object, own span
      used += static_cast<uint64_t>(
          std::ceil(base.Object(oid).size * overhead));
    }
    EXPECT_LE(used, pl.page_size()) << "page " << page;
  }
}

class PlacementPolicies : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(PlacementPolicies, AllObjectsPlacedOnce) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement pl = Placement::Build(base, 1024, GetParam());
  CheckConsistency(base, pl);
  CheckPageCapacity(base, pl, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementPolicies,
                         ::testing::Values(PlacementPolicy::kSequential,
                                           PlacementPolicy::kOptimizedSequential,
                                           PlacementPolicy::kReferenceDfs));

TEST(Placement, SequentialKeepsOidOrder) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement pl =
      Placement::Build(base, 1024, PlacementPolicy::kSequential);
  ocb::Oid last = 0;
  for (PageId page = 0; page < pl.NumPages(); ++page) {
    for (ocb::Oid oid : pl.ObjectsOn(page)) {
      EXPECT_GE(oid, last);
      last = oid;
    }
  }
}

TEST(Placement, OptimizedSequentialGroupsByClass) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement pl =
      Placement::Build(base, 1024, PlacementPolicy::kOptimizedSequential);
  // Walking pages in order, the class id never decreases.
  uint32_t last_class = 0;
  for (PageId page = 0; page < pl.NumPages(); ++page) {
    for (ocb::Oid oid : pl.ObjectsOn(page)) {
      EXPECT_GE(base.Object(oid).cls, last_class);
      last_class = base.Object(oid).cls;
    }
  }
}

TEST(Placement, ReferenceDfsKeepsNeighboursClose) {
  // Under DFS packing, the mean page distance between an object and its
  // first reference should beat sequential packing on a reference-heavy
  // base.
  ocb::OcbParameters p = SmallParams();
  p.num_objects = 1000;
  p.object_locality = 500;  // scattered references
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(p);
  auto mean_ref_distance = [&](const Placement& pl) {
    double total = 0.0;
    uint64_t count = 0;
    for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
      for (ocb::Oid ref : base.References(oid)) {
        if (ref == ocb::kNullOid) continue;
        const double d =
            std::abs(static_cast<double>(pl.PageOf(oid)) -
                     static_cast<double>(pl.PageOf(ref)));
        total += d;
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  const Placement dfs =
      Placement::Build(base, 1024, PlacementPolicy::kReferenceDfs);
  const Placement cls =
      Placement::Build(base, 1024, PlacementPolicy::kOptimizedSequential);
  EXPECT_LT(mean_ref_distance(dfs), mean_ref_distance(cls));
}

TEST(Placement, OverheadFactorUsesMorePages) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement lean =
      Placement::Build(base, 1024, PlacementPolicy::kSequential, 1.0);
  const Placement fat =
      Placement::Build(base, 1024, PlacementPolicy::kSequential, 1.33);
  EXPECT_GT(fat.NumPages(), lean.NumPages());
  CheckPageCapacity(base, fat, 1.33);
}

TEST(Placement, LargeObjectsGetContiguousSpans) {
  ocb::OcbParameters p = SmallParams();
  p.base_instance_size = 600;  // class 7 instances are 4800 B > 1024 B page
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(p);
  const Placement pl =
      Placement::Build(base, 1024, PlacementPolicy::kSequential);
  bool saw_span = false;
  for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
    const ocb::ObjectDef obj = base.Object(oid);
    const PageSpan span = pl.SpanOf(obj.id);
    const auto expected_pages =
        static_cast<uint32_t>((obj.size + 1023) / 1024);
    if (obj.size > 1024) {
      saw_span = true;
      EXPECT_EQ(span.count, expected_pages);
      // Pages of the span beyond the first carry no other object.
      for (uint32_t i = 1; i < span.count; ++i) {
        EXPECT_TRUE(pl.ObjectsOn(span.first + i).empty());
      }
    } else {
      EXPECT_EQ(span.count, 1u);
    }
  }
  EXPECT_TRUE(saw_span);
  CheckConsistency(base, pl);
}

TEST(Placement, BuildFromOrderRejectsBadPermutations) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  std::vector<ocb::Oid> too_short(10);
  EXPECT_THROW(Placement::BuildFromOrder(base, 1024, too_short), util::Error);
  std::vector<ocb::Oid> dup(base.NumObjects(), 0);  // all zeros
  EXPECT_THROW(Placement::BuildFromOrder(base, 1024, dup), util::Error);
}

TEST(Placement, BuildFromOrderHonoursOrder) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  std::vector<ocb::Oid> order(base.NumObjects());
  std::iota(order.begin(), order.end(), ocb::Oid{0});
  std::reverse(order.begin(), order.end());
  const Placement pl = Placement::BuildFromOrder(base, 1024, order);
  // First page holds the highest OIDs.
  EXPECT_EQ(pl.ObjectsOn(0).front(), base.NumObjects() - 1);
  CheckConsistency(base, pl);
}

TEST(Placement, RelocateToTailMovesOnlyRequestedObjects) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement before =
      Placement::Build(base, 1024, PlacementPolicy::kOptimizedSequential);
  const std::vector<ocb::Oid> moved = {5, 17, 230, 42};
  const Placement after =
      Placement::RelocateToTail(before, base, moved);
  EXPECT_GT(after.NumPages(), before.NumPages());
  const std::set<ocb::Oid> moved_set(moved.begin(), moved.end());
  for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
    if (moved_set.count(oid)) {
      EXPECT_GE(after.SpanOf(oid).first, before.NumPages())
          << "moved object must live in the tail";
    } else {
      EXPECT_EQ(after.SpanOf(oid).first, before.SpanOf(oid).first)
          << "unmoved object must stay";
    }
  }
  // Moved objects are contiguous in the requested order.
  PageId last = 0;
  for (ocb::Oid oid : moved) {
    EXPECT_GE(after.SpanOf(oid).first, last);
    last = after.SpanOf(oid).first;
  }
}

TEST(Placement, RelocateToTailLeavesHoles) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement before =
      Placement::Build(base, 1024, PlacementPolicy::kSequential);
  const ocb::Oid victim = 0;
  const PageId old_page = before.PageOf(victim);
  const size_t before_count = before.ObjectsOn(old_page).size();
  const Placement after = Placement::RelocateToTail(before, base, {victim, 1});
  EXPECT_EQ(after.ObjectsOn(old_page).size(), before_count - 2);
}

TEST(Placement, RelocateToTailRejectsDuplicates) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  const Placement before =
      Placement::Build(base, 1024, PlacementPolicy::kSequential);
  EXPECT_THROW(Placement::RelocateToTail(before, base, {3, 3}), util::Error);
}

TEST(Placement, RejectsTinyPages) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(SmallParams());
  EXPECT_THROW(Placement::Build(base, 128, PlacementPolicy::kSequential),
               util::Error);
  EXPECT_THROW(
      Placement::Build(base, 1024, PlacementPolicy::kSequential, 0.5),
      util::Error);
}

TEST(Placement, PolicyNames) {
  EXPECT_STREQ(ToString(PlacementPolicy::kSequential), "SEQUENTIAL");
  EXPECT_STREQ(ToString(PlacementPolicy::kOptimizedSequential),
               "OPTIMIZED_SEQUENTIAL");
  EXPECT_STREQ(ToString(PlacementPolicy::kReferenceDfs), "REFERENCE_DFS");
}

}  // namespace
}  // namespace voodb::storage
