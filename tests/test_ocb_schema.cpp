/// \file test_ocb_schema.cpp
/// \brief Tests for the OCB schema generator.
#include <gtest/gtest.h>

#include "desp/random.hpp"
#include "ocb/schema.hpp"
#include "util/check.hpp"

namespace voodb::ocb {
namespace {

OcbParameters SmallParams() {
  OcbParameters p;
  p.num_classes = 12;
  p.max_refs_per_class = 5;
  p.num_objects = 100;
  return p;
}

TEST(Schema, GeneratesRequestedClassCount) {
  const Schema s = Schema::Generate(SmallParams(), desp::RandomStream(1));
  EXPECT_EQ(s.NumClasses(), 12u);
  for (ClassId c = 0; c < 12; ++c) {
    EXPECT_EQ(s.Class(c).id, c);
  }
}

TEST(Schema, InheritanceForestIsAcyclicByConstruction) {
  const Schema s = Schema::Generate(SmallParams(), desp::RandomStream(2));
  for (const ClassDef& c : s.classes()) {
    if (c.parent != ClassDef::kNoParent) {
      EXPECT_LT(c.parent, c.id) << "parents precede children";
    }
  }
  EXPECT_EQ(s.Class(0).parent, ClassDef::kNoParent);
}

TEST(Schema, ReferenceCountsWithinMaxnref) {
  OcbParameters p = SmallParams();
  p.max_refs_per_class = 7;
  const Schema s = Schema::Generate(p, desp::RandomStream(3));
  for (const ClassDef& c : s.classes()) {
    EXPECT_GE(c.references.size(), 1u);
    EXPECT_LE(c.references.size(), 7u);
  }
}

TEST(Schema, ReferenceTargetsRespectClassLocality) {
  OcbParameters p = SmallParams();
  p.num_classes = 40;
  p.class_locality = 5;
  const Schema s = Schema::Generate(p, desp::RandomStream(4));
  for (const ClassDef& c : s.classes()) {
    for (const ReferenceAttribute& r : c.references) {
      // Forward distance within the wrapping window [0, locality).
      const uint32_t dist = (r.target_class + 40 - c.id) % 40;
      EXPECT_LT(dist, 5u) << "class " << c.id << " -> " << r.target_class;
    }
  }
}

TEST(Schema, ReferenceTypesWithinNreft) {
  OcbParameters p = SmallParams();
  p.num_reference_types = 3;
  const Schema s = Schema::Generate(p, desp::RandomStream(5));
  for (const ClassDef& c : s.classes()) {
    for (const ReferenceAttribute& r : c.references) {
      EXPECT_LT(r.type, 3u);
    }
  }
}

TEST(Schema, InstanceSizeGrowsWithClassIndex) {
  OcbParameters p = SmallParams();
  p.base_instance_size = 10;
  p.class_size_growth = true;
  const Schema s = Schema::Generate(p, desp::RandomStream(6));
  EXPECT_EQ(s.Class(0).instance_size, 10u);
  EXPECT_EQ(s.Class(11).instance_size, 120u);
  EXPECT_DOUBLE_EQ(s.MeanInstanceSize(), 10.0 * (1 + 12) / 2.0);
}

TEST(Schema, FlatSizesWithoutGrowth) {
  OcbParameters p = SmallParams();
  p.base_instance_size = 64;
  p.class_size_growth = false;
  const Schema s = Schema::Generate(p, desp::RandomStream(7));
  for (const ClassDef& c : s.classes()) {
    EXPECT_EQ(c.instance_size, 64u);
  }
}

TEST(Schema, DeterministicInSeed) {
  const Schema a = Schema::Generate(SmallParams(), desp::RandomStream(9));
  const Schema b = Schema::Generate(SmallParams(), desp::RandomStream(9));
  ASSERT_EQ(a.NumClasses(), b.NumClasses());
  for (ClassId c = 0; c < a.NumClasses(); ++c) {
    EXPECT_EQ(a.Class(c).parent, b.Class(c).parent);
    ASSERT_EQ(a.Class(c).references.size(), b.Class(c).references.size());
    for (size_t i = 0; i < a.Class(c).references.size(); ++i) {
      EXPECT_EQ(a.Class(c).references[i].target_class,
                b.Class(c).references[i].target_class);
    }
  }
}

TEST(Schema, OutOfRangeClassThrows) {
  const Schema s = Schema::Generate(SmallParams(), desp::RandomStream(1));
  EXPECT_THROW(s.Class(99), util::Error);
}

TEST(OcbParameters, ValidationCatchesBadValues) {
  OcbParameters p;
  p.Validate();  // defaults are valid
  OcbParameters bad = p;
  bad.num_classes = 0;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.p_set = 0.5;  // probabilities no longer sum to 1
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.p_update = 1.5;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.hierarchy_depth = 0;
  EXPECT_THROW(bad.Validate(), util::Error);
  bad = p;
  bad.think_time_ms = -1.0;
  EXPECT_THROW(bad.Validate(), util::Error);
}

TEST(OcbParameters, DistributionNames) {
  EXPECT_STREQ(ToString(Distribution::kUniform), "UNIFORM");
  EXPECT_STREQ(ToString(Distribution::kZipf), "ZIPF");
  EXPECT_STREQ(ToString(Distribution::kNormal), "NORMAL");
}

}  // namespace
}  // namespace voodb::ocb
