/// \file test_voodb_config.cpp
/// \brief Tests for the Table 3 configuration and Table 4 catalog.
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "voodb/catalog.hpp"
#include "voodb/config.hpp"

namespace voodb::core {
namespace {

TEST(VoodbConfig, DefaultsAreValid) {
  VoodbConfig cfg;
  cfg.Validate();
  // Table 3 defaults.
  EXPECT_EQ(cfg.system_class, SystemClass::kPageServer);
  EXPECT_EQ(cfg.page_size, 4096u);
  EXPECT_EQ(cfg.buffer_pages, 500u);
  EXPECT_EQ(cfg.page_replacement, storage::ReplacementPolicy::kLru);
  EXPECT_EQ(cfg.prefetch, PrefetchPolicy::kNone);
  EXPECT_EQ(cfg.multiprogramming_level, 10u);
  EXPECT_DOUBLE_EQ(cfg.get_lock_ms, 0.5);
  EXPECT_DOUBLE_EQ(cfg.release_lock_ms, 0.5);
  EXPECT_EQ(cfg.num_users, 1u);
  EXPECT_DOUBLE_EQ(cfg.disk.search_ms, 7.4);
  EXPECT_DOUBLE_EQ(cfg.disk.latency_ms, 4.3);
  EXPECT_DOUBLE_EQ(cfg.disk.transfer_ms, 0.5);
}

TEST(VoodbConfig, ValidationCatchesBadValues) {
  VoodbConfig cfg;
  cfg.page_size = 100;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.buffer_pages = 0;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.multiprogramming_level = 0;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.num_users = 0;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.get_lock_ms = -1.0;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.storage_overhead = 0.9;
  EXPECT_THROW(cfg.Validate(), util::Error);
  cfg = VoodbConfig{};
  cfg.disk.search_ms = -0.1;
  EXPECT_THROW(cfg.Validate(), util::Error);
}

TEST(SystemCatalog, O2MatchesTable4) {
  const VoodbConfig o2 = SystemCatalog::O2();
  o2.Validate();
  EXPECT_EQ(o2.system_class, SystemClass::kPageServer);
  EXPECT_LE(o2.network_throughput_mbps, 0.0);  // +inf
  EXPECT_EQ(o2.page_size, 4096u);
  EXPECT_EQ(o2.buffer_pages, 3840u);
  EXPECT_EQ(o2.page_replacement, storage::ReplacementPolicy::kLru);
  EXPECT_EQ(o2.prefetch, PrefetchPolicy::kNone);
  EXPECT_DOUBLE_EQ(o2.disk.search_ms, 6.3);
  EXPECT_DOUBLE_EQ(o2.disk.latency_ms, 2.99);
  EXPECT_DOUBLE_EQ(o2.disk.transfer_ms, 0.7);
  EXPECT_EQ(o2.multiprogramming_level, 10u);
  EXPECT_DOUBLE_EQ(o2.get_lock_ms, 0.5);
  EXPECT_EQ(o2.num_users, 1u);
  EXPECT_FALSE(o2.use_virtual_memory);
  EXPECT_GT(o2.storage_overhead, 1.0);
}

TEST(SystemCatalog, TexasMatchesTable4) {
  const VoodbConfig texas = SystemCatalog::Texas();
  texas.Validate();
  EXPECT_EQ(texas.system_class, SystemClass::kCentralized);
  EXPECT_EQ(texas.page_size, 4096u);
  EXPECT_DOUBLE_EQ(texas.disk.search_ms, 7.4);
  EXPECT_DOUBLE_EQ(texas.disk.latency_ms, 4.3);
  EXPECT_DOUBLE_EQ(texas.disk.transfer_ms, 0.5);
  EXPECT_EQ(texas.multiprogramming_level, 1u);
  EXPECT_DOUBLE_EQ(texas.get_lock_ms, 0.0);
  EXPECT_DOUBLE_EQ(texas.release_lock_ms, 0.0);
  EXPECT_TRUE(texas.use_virtual_memory);
  EXPECT_TRUE(texas.vm_reserve_references);
  EXPECT_TRUE(texas.vm_dirty_on_load);
}

TEST(SystemCatalog, MemorySweepsScaleFrames) {
  const VoodbConfig t8 = SystemCatalog::TexasWithMemory(8.0);
  const VoodbConfig t64 = SystemCatalog::TexasWithMemory(64.0);
  EXPECT_LT(t8.buffer_pages, t64.buffer_pages);
  EXPECT_NEAR(static_cast<double>(t64.buffer_pages) / t8.buffer_pages, 8.0,
              0.1);
  const VoodbConfig o8 = SystemCatalog::O2WithCache(8.0);
  const VoodbConfig o16 = SystemCatalog::O2WithCache(16.0);
  EXPECT_EQ(o8.buffer_pages * 2, o16.buffer_pages);
  EXPECT_THROW(SystemCatalog::TexasWithMemory(0.0), util::Error);
  EXPECT_THROW(SystemCatalog::O2WithCache(-1.0), util::Error);
}

TEST(Names, ToStringCoverage) {
  EXPECT_STREQ(ToString(SystemClass::kCentralized), "CENTRALIZED");
  EXPECT_STREQ(ToString(SystemClass::kObjectServer), "OBJECT_SERVER");
  EXPECT_STREQ(ToString(SystemClass::kPageServer), "PAGE_SERVER");
  EXPECT_STREQ(ToString(SystemClass::kDbServer), "DB_SERVER");
  EXPECT_STREQ(ToString(PrefetchPolicy::kNone), "NONE");
  EXPECT_STREQ(ToString(PrefetchPolicy::kSequential), "SEQUENTIAL");
}

}  // namespace
}  // namespace voodb::core
