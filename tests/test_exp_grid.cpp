/// \file test_exp_grid.cpp
/// \brief Tests for cartesian sweep grids and the grid runner.
#include <gtest/gtest.h>

#include <vector>

#include "desp/random.hpp"
#include "exp/grid.hpp"
#include "util/check.hpp"

namespace voodb::exp {
namespace {

TEST(SweepGrid, EnumeratesCartesianProductRowMajor) {
  SweepGrid grid;
  grid.Axis("a", {1, 2}).Axis("b", {10, 20, 30});
  EXPECT_EQ(grid.NumAxes(), 2u);
  EXPECT_EQ(grid.NumPoints(), 6u);
  // First axis slowest: (1,10) (1,20) (1,30) (2,10) (2,20) (2,30).
  const std::vector<GridPoint> points = grid.Points();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points[0].Get("a"), 1.0);
  EXPECT_DOUBLE_EQ(points[0].Get("b"), 10.0);
  EXPECT_DOUBLE_EQ(points[2].Get("a"), 1.0);
  EXPECT_DOUBLE_EQ(points[2].Get("b"), 30.0);
  EXPECT_DOUBLE_EQ(points[3].Get("a"), 2.0);
  EXPECT_DOUBLE_EQ(points[3].Get("b"), 10.0);
  EXPECT_DOUBLE_EQ(points[5].Get("b"), 30.0);
  EXPECT_EQ(points[4].index, 4u);
  EXPECT_EQ(points[1].Label(), "a=1 b=20");
}

TEST(SweepGrid, AxislessGridHasOneEmptyPoint) {
  const SweepGrid grid;
  EXPECT_EQ(grid.NumPoints(), 1u);
  EXPECT_TRUE(grid.Point(0).coords.empty());
  EXPECT_THROW(grid.Point(1), util::Error);
}

TEST(SweepGrid, RejectsBadAxes) {
  SweepGrid grid;
  grid.Axis("a", {1});
  EXPECT_THROW(grid.Axis("a", {2}), util::Error);  // duplicate name
  EXPECT_THROW(grid.Axis("b", {}), util::Error);   // empty values
  EXPECT_THROW(grid.Axis("", {1}), util::Error);   // empty name
  EXPECT_THROW(grid.Point(1).Get("nope"), util::Error);
}

TEST(GridPoint, GetAndHas) {
  SweepGrid grid;
  grid.Axis("x", {5});
  const GridPoint p = grid.Point(0);
  EXPECT_TRUE(p.Has("x"));
  EXPECT_FALSE(p.Has("y"));
  EXPECT_DOUBLE_EQ(p.Get("x"), 5.0);
  EXPECT_THROW(p.Get("y"), util::Error);
}

desp::ReplicationRunner::Model ScaledModel(double scale) {
  return [scale](uint64_t seed, desp::MetricSink& sink) {
    desp::RandomStream rng(seed);
    sink.Observe("v", scale * rng.Uniform(1.0, 2.0));
  };
}

TEST(RunGrid, CellsMatchStandaloneFarmRuns) {
  // Common random numbers: every cell uses the same seed chain, so a cell
  // must reproduce a standalone farm run of its model bit for bit.
  SweepGrid grid;
  grid.Axis("scale", {1, 10, 100});
  FarmOptions options;
  options.threads = 4;
  options.base_seed = 77;
  const std::vector<GridCell> cells = RunGrid(
      grid, [](const GridPoint& p) { return ScaledModel(p.Get("scale")); },
      20, options);
  ASSERT_EQ(cells.size(), 3u);
  for (const GridCell& cell : cells) {
    FarmOptions solo;
    solo.threads = 1;
    solo.base_seed = 77;
    const desp::ReplicationResult standalone =
        ReplicationFarm(ScaledModel(cell.point.Get("scale")), solo).Run(20);
    EXPECT_EQ(cell.result.replications(), standalone.replications());
    EXPECT_EQ(cell.result.Metric("v").mean(), standalone.Metric("v").mean());
    EXPECT_EQ(cell.result.Metric("v").variance(),
              standalone.Metric("v").variance());
  }
}

TEST(RunGrid, ThreadCountInvariant) {
  SweepGrid grid;
  grid.Axis("scale", {1, 3}).Axis("unused", {0, 1});
  auto run = [&grid](size_t threads) {
    FarmOptions options;
    options.threads = threads;
    options.base_seed = 5;
    return RunGrid(
        grid, [](const GridPoint& p) { return ScaledModel(p.Get("scale")); },
        15, options);
  };
  const std::vector<GridCell> serial = run(1);
  const std::vector<GridCell> parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.Metric("v").mean(),
              parallel[i].result.Metric("v").mean());
    EXPECT_EQ(serial[i].result.Metric("v").variance(),
              parallel[i].result.Metric("v").variance());
  }
}

TEST(ApplyAxisTest, BindsKnownAxesAndRejectsUnknown) {
  core::ExperimentConfig config;
  ApplyAxis(config, "buffer_pages", 256);
  ApplyAxis(config, "multiprogramming_level", 4);
  ApplyAxis(config, "num_objects", 1000);
  ApplyAxis(config, "think_time_ms", 2.5);
  ApplyAxis(config, "event_queue", 2);
  EXPECT_EQ(config.system.buffer_pages, 256u);
  EXPECT_EQ(config.system.multiprogramming_level, 4u);
  EXPECT_EQ(config.workload.num_objects, 1000u);
  EXPECT_DOUBLE_EQ(config.workload.think_time_ms, 2.5);
  EXPECT_EQ(config.system.event_queue, desp::EventQueueKind::kCalendar);
  EXPECT_THROW(ApplyAxis(config, "no_such_axis", 1.0), util::Error);
  EXPECT_THROW(ApplyAxis(config, "event_queue", 3.0), util::Error);
  EXPECT_FALSE(IsWorkloadAxis("event_queue"));
  // Integral fields reject fractional or negative sweep values.
  EXPECT_THROW(ApplyAxis(config, "buffer_pages", 0.5), util::Error);
  EXPECT_THROW(ApplyAxis(config, "buffer_pages", -1.0), util::Error);
  EXPECT_TRUE(IsWorkloadAxis("num_objects"));
  EXPECT_FALSE(IsWorkloadAxis("buffer_pages"));
}

TEST(RunExperimentGrid, RunsFullExperimentsPerCell) {
  core::ExperimentConfig ec;
  ec.system.system_class = core::SystemClass::kCentralized;
  ec.system.page_size = 1024;
  ec.workload.num_classes = 8;
  ec.workload.num_objects = 300;
  ec.workload.max_refs_per_class = 3;
  ec.workload.base_instance_size = 60;
  ec.workload.hot_transactions = 20;
  ec.workload.seed = 71;
  ec.replications = 4;

  SweepGrid grid;
  grid.Axis("buffer_pages", {8, 64});
  const std::vector<GridCell> cells = RunExperimentGrid(ec, grid, 4);
  ASSERT_EQ(cells.size(), 2u);
  for (const GridCell& cell : cells) {
    EXPECT_EQ(cell.result.replications(), 4u);
    EXPECT_GT(cell.result.Metric("total_ios").mean(), 0.0);
  }
  // More buffer never costs I/Os on an identical workload.
  EXPECT_GE(cells[0].result.Metric("total_ios").mean(),
            cells[1].result.Metric("total_ios").mean());
  // A cell whose axis value equals the base config reproduces RunOnBase.
  core::ExperimentConfig direct = ec;
  direct.system.buffer_pages = 8;
  direct.threads = 1;
  const desp::ReplicationResult expected = core::Experiment::Run(direct);
  EXPECT_EQ(cells[0].result.Metric("total_ios").mean(),
            expected.Metric("total_ios").mean());
}

}  // namespace
}  // namespace voodb::exp
